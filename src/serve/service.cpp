#include "serve/service.hpp"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "blas/tuning.hpp"
#include "factor/confchox.hpp"
#include "factor/conflux_lu.hpp"
#include "models/models.hpp"
#include "recover/options.hpp"
#include "sched/taskpool.hpp"
#include "support/metrics.hpp"
#include "support/profile.hpp"
#include "xsim/machine.hpp"

namespace conflux::serve {

namespace {

const metrics::Counter g_requests("serve.requests");
const metrics::Counter g_rejected("serve.rejected");
const metrics::Counter g_cancelled("serve.cancelled");
const metrics::Counter g_resp_ok("serve.responses.ok");
const metrics::Counter g_resp_degraded("serve.responses.degraded");
const metrics::Counter g_resp_failed("serve.responses.failed");
const metrics::Gauge g_queue_depth("serve.queue.depth");

constexpr std::initializer_list<double> kLatencyBounds = {
    1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1.0, 3.0, 10.0};
const metrics::Histogram g_lat_total("serve.latency.total_s", kLatencyBounds);
const metrics::Histogram g_lat_queue("serve.latency.queue_s", kLatencyBounds);
const metrics::Histogram g_lat_factor("serve.latency.factor_s", kLatencyBounds);
const metrics::Histogram g_lat_solve("serve.latency.solve_s", kLatencyBounds);

int env_int(const char* name, int fallback) {
  if (const char* s = std::getenv(name); s != nullptr && *s != '\0') {
    const int v = std::atoi(s);
    if (v > 0) return v;
  }
  return fallback;
}

ServiceOptions resolve_options(ServiceOptions opt) {
  if (opt.threads <= 0) opt.threads = env_int("CONFLUX_SERVE_THREADS", 2);
  if (opt.queue_depth <= 0)
    opt.queue_depth = env_int("CONFLUX_SERVE_QUEUE_DEPTH", 64);
  if (opt.ranks < 1) opt.ranks = 1;
  // cache_words <= 0 is resolved by FactorCache itself.
  return opt;
}

/// Machine + grid for one request: deterministic in (n, options) only, so
/// the service and the serial golden plan identically.
struct Plan {
  xsim::MachineSpec spec;
  grid::Grid3D grid{1, 1, 1};
};

Plan plan_for(index_t n, const ServiceOptions& opt) {
  Plan plan;
  const double nn = static_cast<double>(n);
  plan.spec.memory_words = opt.memory_words > 0.0
                               ? opt.memory_words
                               : std::max(1.0, 4.0 * nn * nn /
                                                   static_cast<double>(opt.ranks));
  if (opt.ranks > 1) {
    plan.grid = models::best_conflux_grid(n, opt.ranks, plan.spec.memory_words);
  }
  plan.spec.num_ranks = plan.grid.ranks();
  return plan;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Copy the request's RHS into the response's solution buffer (handles
/// strided client views; nrhs = 0 yields an n x 0 solution).
MatrixD rhs_copy(const SolveRequest& req) {
  MatrixD x(req.a.rows(), req.b.cols());
  if (req.b.cols() > 0) copy(req.b, x.view());
  return x;
}

/// Execute one request end to end: fingerprint, cache, factor (under the
/// pool lease when serving), solve. This one function IS both the service
/// path (cache + lease) and the serial golden (no cache, no lease) — the
/// arithmetic is shared by construction, which is what the bitwise
/// response-equality contract rests on.
SolveResponse run_request(const SolveRequest& req, const ServiceOptions& opt,
                          FactorCache* cache, bool use_lease) {
  SolveResponse resp;
  resp.tenant = req.tenant;
  if (req.a.rows() != req.a.cols()) {
    resp.status = Status(StatusCode::kInvalidArgument,
                         "solve request matrix must be square");
    return resp;
  }
  if (req.b.cols() > 0 && req.b.rows() != req.a.rows()) {
    resp.status = Status(StatusCode::kInvalidArgument,
                         "solve request rhs rows must match the matrix");
    return resp;
  }

  const auto factor_t0 = std::chrono::steady_clock::now();
  {
    prof::ScopedSpan span("serve.fingerprint");
    resp.key = request_key(req, opt);
  }

  // The factor handle this request will solve through: either pinned from
  // the cache or freshly computed (and, when healthy, published to it).
  std::shared_ptr<const CachedFactor> entry = cache ? cache->lookup(resp.key)
                                                    : nullptr;
  resp.cache_hit = entry != nullptr;

  // Factor on a miss. Service traffic must not clobber the snapshot
  // registry (keyed without a tenant axis), and exactly one request's task
  // graph may be live on the shared pool — a tenant's failure then unwinds
  // its own graph only.
  StatusCode fp32_reason = StatusCode::kOk;  // why the mixed fp32 leg ended
  if (entry == nullptr) {
    prof::ScopedSpan span("serve.factor");
    recover::ScopedCheckpointSuppression no_ckpt;
    auto lease = use_lease ? sched::TaskPool::instance().acquire_lease(
                                 static_cast<int>(req.priority))
                           : sched::TaskPool::Lease();
    const Plan plan = plan_for(req.a.rows(), opt);
    xsim::Machine m(plan.spec, xsim::ExecMode::Real);
    // Healthy factors are cacheable; degraded/failed ones never enter, and
    // any stale healthy entry for this content is dropped (a fault-injected
    // re-factorization of previously cached content must not leave the old
    // handle answering for a matrix the service just failed on).
    auto publish_fp64 = [&](auto result) {
      if (!result.has_value()) {
        resp.status = result.status();
        if (cache) cache->invalidate(resp.key);
        return;
      }
      const bool healthy = result.ok();
      if (!healthy) {
        resp.status = result.status();
        if (cache) cache->invalidate(resp.key);
      }
      auto handle = std::make_shared<CachedFactor>(
          CachedFactor{std::move(result).value()});
      if (healthy && cache) cache->insert(resp.key, handle);
      entry = std::move(handle);
    };
    auto publish_fp32 = [&](auto result) -> StatusCode {
      if (result.has_value() && result.ok()) {
        auto handle = std::make_shared<CachedFactor>(
            CachedFactor{std::move(result).value()});
        if (cache) cache->insert(resp.key, handle);
        entry = std::move(handle);
        return StatusCode::kOk;
      }
      if (cache) cache->invalidate(resp.key);
      return result.status().code();
    };
    if (req.precision == Precision::kFp64) {
      if (req.method == Method::kLu) {
        publish_fp64(factor::try_conflux_lu(m, plan.grid, req.a, opt.factor));
      } else {
        publish_fp64(factor::try_confchox(m, plan.grid, req.a, opt.factor));
      }
      if (entry == nullptr) {  // hard failure, classified in resp.status
        resp.factor_s = seconds_since(factor_t0);
        return resp;
      }
    } else {
      // Mixed: factor in fp32. A failed or degraded fp32 factorization
      // sends the ladder to the fp64 leg below (factor/mixed.hpp semantics:
      // degraded fp32 factors carry no refinable accuracy either).
      MatrixF a32(req.a.rows(), req.a.cols());
      convert(req.a, a32.view());
      const ConstViewF a32v = a32.view();
      if (req.method == Method::kLu) {
        fp32_reason =
            publish_fp32(factor::try_conflux_lu(m, plan.grid, a32v, opt.factor));
      } else {
        fp32_reason =
            publish_fp32(factor::try_confchox(m, plan.grid, a32v, opt.factor));
      }
    }
  }
  resp.factor_s = seconds_since(factor_t0);

  // Solve. One BLAS thread per request — both paths, so the golden and the
  // service run the identical kernel configuration.
  const auto solve_t0 = std::chrono::steady_clock::now();
  prof::ScopedSpan span("serve.solve");
  xblas::ScopedThreadCap cap(1);
  if (req.precision == Precision::kFp64) {
    resp.health = entry->health();
    resp.x = rhs_copy(req);
    if (req.b.cols() > 0) {
      if (req.method == Method::kLu) {
        factor::conflux_lu_solve(std::get<factor::LuResult>(entry->handle),
                                 resp.x.view());
      } else {
        factor::confchox_solve(std::get<factor::CholResult>(entry->handle),
                               resp.x.view());
      }
    }
    resp.status = resp.health.to_status();
    resp.solve_s = seconds_since(solve_t0);
    return resp;
  }

  // Mixed-precision ladder: refine against the fp32 factors, fall back to a
  // fresh fp64 factor + direct solve when refinement cannot deliver.
  if (entry != nullptr) {
    resp.health = entry->health();
    resp.x = rhs_copy(req);
    const factor::RefineReport rep =
        req.method == Method::kLu
            ? factor::refine_lu(std::get<factor::LuResultF>(entry->handle),
                                req.a, resp.x.view(), opt.refine)
            : factor::refine_cholesky(
                  std::get<factor::CholResultF>(entry->handle), req.a,
                  resp.x.view(), opt.refine);
    resp.ir_steps = rep.steps;
    resp.backward_error = rep.backward_error;
    if (rep.converged) {
      resp.status = Status();
      resp.solve_s = seconds_since(solve_t0);
      return resp;
    }
    fp32_reason = rep.code;
  }
  if (!opt.allow_fp64_fallback) {
    resp.status = Status(fp32_reason == StatusCode::kOk
                             ? StatusCode::kRefineStagnated
                             : fp32_reason,
                         "mixed-precision leg did not converge and the fp64 "
                         "fallback is disabled");
    resp.solve_s = seconds_since(solve_t0);
    return resp;
  }

  // fp64 fallback leg: answers this request only, never cached (the fp32
  // handle is the cacheable artifact of a mixed request).
  resp.fp64_fallback = true;
  {
    recover::ScopedCheckpointSuppression no_ckpt;
    auto lease = use_lease ? sched::TaskPool::instance().acquire_lease(
                                 static_cast<int>(req.priority))
                           : sched::TaskPool::Lease();
    const Plan plan = plan_for(req.a.rows(), opt);
    xsim::Machine m(plan.spec, xsim::ExecMode::Real);
    if (req.method == Method::kLu) {
      auto r = factor::try_conflux_lu(m, plan.grid, req.a, opt.factor);
      if (!r.has_value()) {
        // resp.x keeps the fp32 leg's best iterate when one exists; the
        // failed status says not to trust it (Result degraded semantics).
        resp.status = r.status();
        resp.solve_s = seconds_since(solve_t0);
        return resp;
      }
      resp.health = r.value().health;
      resp.x = rhs_copy(req);
      if (req.b.cols() > 0) factor::conflux_lu_solve(r.value(), resp.x.view());
      resp.status = resp.health.to_status();
    } else {
      auto r = factor::try_confchox(m, plan.grid, req.a, opt.factor);
      if (!r.has_value()) {
        // resp.x keeps the fp32 leg's best iterate when one exists; the
        // failed status says not to trust it (Result degraded semantics).
        resp.status = r.status();
        resp.solve_s = seconds_since(solve_t0);
        return resp;
      }
      resp.health = r.value().health;
      resp.x = rhs_copy(req);
      if (req.b.cols() > 0) factor::confchox_solve(r.value(), resp.x.view());
      resp.status = resp.health.to_status();
    }
  }
  if (req.b.cols() > 0) {
    resp.backward_error =
        factor::solve_backward_error(req.a, resp.x.view(), req.b);
  }
  resp.solve_s = seconds_since(solve_t0);
  return resp;
}

}  // namespace

Fingerprint request_key(const SolveRequest& req, const ServiceOptions& opt) {
  Fingerprint key = fingerprint(req.a);
  key = fingerprint_combine(
      key, (static_cast<std::uint64_t>(req.method) << 8) |
               static_cast<std::uint64_t>(req.precision));
  key = fingerprint_combine(key,
                            static_cast<std::uint64_t>(opt.factor.block_size));
  key = fingerprint_combine(key, static_cast<std::uint64_t>(opt.ranks));
  return key;
}

struct SolveService::Ticket::RequestState {
  SolveRequest req;
  Clock::time_point submit_t;
  sched::CancelToken token;
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  SolveResponse resp;
};

SolveService::SolveService(const ServiceOptions& opt)
    : opt_(resolve_options(opt)), cache_(opt_.cache_words) {
  executors_.reserve(static_cast<std::size_t>(opt_.threads));
  for (int i = 0; i < opt_.threads; ++i) {
    executors_.emplace_back([this] { executor_main(); });
  }
}

SolveService::~SolveService() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : executors_) t.join();
  // Executors stop without draining: whatever is still queued resolves as
  // cancelled so outstanding tickets never wedge a waiter.
  for (auto& q : queues_) {
    while (!q.empty()) {
      auto rs = std::move(q.front());
      q.pop_front();
      SolveResponse resp;
      resp.tenant = rs->req.tenant;
      resp.status = Status(StatusCode::kCancelled, "solve service stopped");
      resolve(*rs, std::move(resp));
    }
  }
}

SolveService::Ticket SolveService::submit(const SolveRequest& req) {
  auto state = std::make_shared<RequestState>();
  state->req = req;
  state->submit_t = Clock::now();
  g_requests.add(1.0);

  if (req.a.rows() != req.a.cols() ||
      (req.b.cols() > 0 && req.b.rows() != req.a.rows())) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.submitted;
    }
    SolveResponse resp;
    resp.tenant = req.tenant;
    resp.status = Status(StatusCode::kInvalidArgument,
                         "malformed solve request (shape mismatch)");
    resolve(*state, std::move(resp));
    return Ticket(state);
  }

  bool rejected = false;
  bool stopped = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.submitted;
    if (stopping_) {
      stopped = true;
    } else {
      const auto cls = static_cast<std::size_t>(req.priority);
      if (static_cast<int>(queues_[cls].size()) >= opt_.queue_depth) {
        rejected = true;
      } else {
        queues_[cls].push_back(state);
        long long depth = 0;
        for (const auto& q : queues_) depth += static_cast<long long>(q.size());
        stats_.queue_high_water = std::max(stats_.queue_high_water, depth);
        g_queue_depth.set(static_cast<double>(depth));
      }
    }
  }
  if (stopped) {
    SolveResponse resp;
    resp.tenant = req.tenant;
    resp.status = Status(StatusCode::kCancelled, "solve service stopped");
    resolve(*state, std::move(resp));
  } else if (rejected) {
    SolveResponse resp;
    resp.tenant = req.tenant;
    resp.status =
        Status(StatusCode::kAdmissionRejected,
               "admission queue full for this priority class — retry later");
    resolve(*state, std::move(resp));
  } else {
    work_cv_.notify_one();
  }
  return Ticket(state);
}

SolveResponse SolveService::wait(Ticket& ticket) {
  expects(ticket.valid(), "wait() needs a live ticket");
  auto state = std::move(ticket.state_);
  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&] { return state->done; });
  return std::move(state->resp);
}

bool SolveService::cancel(Ticket& ticket) {
  if (!ticket.valid()) return false;
  auto state = ticket.state_;
  bool removed = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto& q = queues_[static_cast<std::size_t>(state->req.priority)];
    auto it = std::find(q.begin(), q.end(), state);
    if (it != q.end()) {
      q.erase(it);
      removed = true;
      long long depth = 0;
      for (const auto& qq : queues_) depth += static_cast<long long>(qq.size());
      g_queue_depth.set(static_cast<double>(depth));
    }
  }
  // Close the pop/execute window too: an executor that already popped this
  // request checks the token once more before factoring.
  state->token.cancel();
  if (removed) {
    SolveResponse resp;
    resp.tenant = state->req.tenant;
    resp.status = Status(StatusCode::kCancelled, "cancelled while queued");
    resolve(*state, std::move(resp));
  }
  return removed;
}

SolveResponse SolveService::solve(const SolveRequest& req) {
  Ticket t = submit(req);
  return wait(t);
}

SolveResponse SolveService::solve_serial(const SolveRequest& req,
                                         const ServiceOptions& opt) {
  const ServiceOptions ropt = resolve_options(opt);
  SolveResponse resp = run_request(req, ropt, nullptr, /*use_lease=*/false);
  resp.total_s = resp.factor_s + resp.solve_s;
  return resp;
}

SolveService::Stats SolveService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = stats_;
  s.cache = cache_.stats();
  return s;
}

auto SolveService::pop_next() -> std::shared_ptr<RequestState> {
  std::unique_lock<std::mutex> lock(mu_);
  work_cv_.wait(lock, [&] {
    if (stopping_) return true;
    for (const auto& q : queues_) {
      if (!q.empty()) return true;
    }
    return false;
  });
  if (stopping_) return nullptr;
  for (auto& q : queues_) {
    if (q.empty()) continue;
    auto rs = std::move(q.front());
    q.pop_front();
    long long depth = 0;
    for (const auto& qq : queues_) depth += static_cast<long long>(qq.size());
    g_queue_depth.set(static_cast<double>(depth));
    return rs;
  }
  return nullptr;  // unreachable: the predicate saw a non-empty queue
}

void SolveService::executor_main() {
  for (;;) {
    auto rs = pop_next();
    if (rs == nullptr) return;
    if (rs->token.cancelled()) {
      SolveResponse resp;
      resp.tenant = rs->req.tenant;
      resp.status = Status(StatusCode::kCancelled, "cancelled while queued");
      resolve(*rs, std::move(resp));
      continue;
    }
    execute(*rs);
  }
}

void SolveService::execute(RequestState& rs) {
  const double queue_s = seconds_since(rs.submit_t);
  SolveResponse resp;
  // Tenant isolation backstop: nothing a request does — numerics, fault
  // injection, a bug in a handler — may take the executor down. try_* entry
  // points classify everything they know; this catch is for the rest.
  try {
    resp = run_request(rs.req, opt_, &cache_, /*use_lease=*/true);
  } catch (const status_error& e) {
    resp = SolveResponse{};
    resp.tenant = rs.req.tenant;
    resp.status = e.status();
  } catch (const std::exception& e) {
    resp = SolveResponse{};
    resp.tenant = rs.req.tenant;
    resp.status = Status(StatusCode::kTaskFailed, e.what());
  }
  resp.queue_s = queue_s;
  resolve(rs, std::move(resp));
}

void SolveService::resolve(RequestState& rs, SolveResponse&& resp) {
  resp.total_s = seconds_since(rs.submit_t);
  g_lat_total.record(resp.total_s);
  g_lat_queue.record(resp.queue_s);
  g_lat_factor.record(resp.factor_s);
  g_lat_solve.record(resp.solve_s);
  {
    std::lock_guard<std::mutex> lock(mu_);
    switch (resp.status.code()) {
      case StatusCode::kOk:
        ++stats_.ok;
        g_resp_ok.add(1.0);
        break;
      case StatusCode::kCancelled:
        ++stats_.cancelled;
        g_cancelled.add(1.0);
        break;
      case StatusCode::kAdmissionRejected:
        ++stats_.admission_rejected;
        g_rejected.add(1.0);
        break;
      default:
        if (resp.x.rows() > 0) {
          ++stats_.degraded;
          g_resp_degraded.add(1.0);
        } else {
          ++stats_.failed;
          g_resp_failed.add(1.0);
        }
        break;
    }
  }
  {
    std::lock_guard<std::mutex> lock(rs.mu);
    rs.resp = std::move(resp);
    rs.done = true;
  }
  rs.cv.notify_all();
}

}  // namespace conflux::serve
