// Matrix fingerprints: the content key of the solve service's
// factorization cache (DESIGN.md "Solve service").
//
// A fingerprint is a 128-bit content hash over a matrix view's LOGICAL
// elements — dimensions first, then every entry in row-major order, each
// hashed from its exact bit pattern. Properties the cache depends on:
//
//   - content-only: two views with the same shape and the same element bits
//     hash identically regardless of leading dimension (a strided client
//     view and its packed copy are the same matrix), and regardless of
//     thread count, pool width or grid shape — the hash is a single-thread,
//     single-pass fold with no execution-dependent input;
//   - bit-sensitive: the hash folds raw scalar bit patterns, so a one-ulp
//     perturbation (or a signed zero flip) changes the key — exactly the
//     granularity at which the cached factors would stop being bitwise
//     reusable;
//   - O(n^2) single pass: each element is read once; the cost is metered
//     under serve.fingerprint.* so traffic-level hashing shows up in the
//     observability layer instead of hiding inside request latency.
//
// 128 bits because the cache equates keys WITHOUT comparing matrices: at
// 64 bits a few billion distinct matrices reach birthday range, and a
// collision silently serves tenant A a solve through tenant B's factors.
// Two independently-seeded 64-bit folds push that risk below hardware
// error rates.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "tensor/matrix.hpp"

namespace conflux::serve {

struct Fingerprint {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const Fingerprint&, const Fingerprint&) = default;

  /// 32 lowercase hex digits (hi then lo) for logs and JSON.
  std::string hex() const;
};

/// Hash the logical contents of `a` (see file comment for the contract).
Fingerprint fingerprint(ConstMatrixView<double> a);
Fingerprint fingerprint(ConstMatrixView<float> a);

/// Fold extra key material (an options word, a method discriminant) into an
/// existing fingerprint. Order-sensitive, as key derivation should be.
Fingerprint fingerprint_combine(const Fingerprint& fp, std::uint64_t word);

}  // namespace conflux::serve

template <>
struct std::hash<conflux::serve::Fingerprint> {
  std::size_t operator()(const conflux::serve::Fingerprint& fp) const noexcept {
    // hi and lo are already avalanched; xor-fold is enough for bucketing.
    return static_cast<std::size_t>(fp.hi ^ (fp.lo * 0x9e3779b97f4a7c15ull));
  }
};
