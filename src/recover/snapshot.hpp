// Step-granular checkpoint snapshots (DESIGN.md "Recovery model").
//
// A snapshot is one opaque byte blob: a fixed 64-byte header followed by a
// checksummed payload the factor core serializes/deserializes itself. The
// header pins everything that must match for a restore to be meaningful —
// magic, format version, factorization kind, scalar type, problem shape
// (n, v) and grid (px, py, pz) — plus the step the snapshot was taken at,
// the payload size, and a chunked word-FNV checksum of the payload (fixed
// 4 MB chunks digested independently — in parallel over the pool on both
// the save and restore paths — then folded in order). SnapshotReader
// validates ALL of it before a single payload byte is interpreted; any
// mismatch, truncation, or checksum failure is a typed
// status_error(kCheckpointInvalid), never undefined behaviour.
//
// Snapshots are taken at drained step boundaries (every ckpt_every outer
// steps, after the pool has retired all tasks that write state the snapshot
// covers), so a restore followed by re-execution of the remaining steps is
// bitwise identical to the uninterrupted run.
//
// Storage is a process-wide latest-snapshot registry keyed by the
// SnapshotKey (one live snapshot per distinct factorization shape; a newer
// snapshot of the same key replaces the older — restart only ever wants the
// latest). When Options::ckpt_dir is set, each store also mirrors the blob
// to "<dir>/<key>.ckpt" via write-to-temp + rename, so a killed process can
// be resumed by a fresh one.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/status.hpp"
#include "tensor/matrix.hpp"

namespace conflux::recover {

using Blob = std::vector<std::uint8_t>;

enum class FactorKind : std::uint8_t {
  kLu = 1,
  kCholesky = 2,
};

/// Identity of a factorization for snapshot matching: two runs share
/// snapshots iff their keys are equal.
struct SnapshotKey {
  FactorKind kind = FactorKind::kLu;
  char scalar = 'd';  ///< 'd' = double, 'f' = float
  std::int64_t n = 0;
  std::int64_t v = 0;  ///< block size
  std::int32_t px = 0, py = 0, pz = 0;

  /// Stable registry/file key, e.g. "lu-d-n2048-v64-g4x4x4".
  std::string to_string() const;

  bool operator==(const SnapshotKey&) const = default;
};

/// Serializes one snapshot. Usage: construct, put_* the payload in a fixed
/// order, seal() to patch the header (payload size + checksum) and take the
/// blob. The writer is append-only; the put_* order IS the format, and the
/// reader must consume in the same order.
class SnapshotWriter {
 public:
  SnapshotWriter(const SnapshotKey& key, std::int64_t step);

  void put_i64(std::int64_t value);
  void put_f64(double value);
  void put_bytes(const void* data, std::size_t bytes);
  /// Length-prefixed raw dump of an index vector.
  void put_indices(const std::vector<index_t>& values);

  /// Finalize: write payload size and checksum into the header and
  /// surrender the blob. The writer must not be used afterwards.
  Blob seal() &&;

 private:
  Blob blob_;
};

/// Validates and deserializes one snapshot. The constructor checks the
/// header against `key` (magic, version, kind, scalar, shape, grid), the
/// payload size against the blob, and the checksum against the payload;
/// every get_* bounds-checks. All failures throw
/// status_error(kCheckpointInvalid).
class SnapshotReader {
 public:
  SnapshotReader(const SnapshotKey& key, const Blob& blob);

  /// Outer step the snapshot was taken at (restart resumes here).
  std::int64_t step() const { return step_; }

  std::int64_t get_i64();
  double get_f64();
  void get_bytes(void* out, std::size_t bytes);
  std::vector<index_t> get_indices();

  /// Unread payload bytes (step-0 marker snapshots must carry none).
  std::size_t remaining() const { return blob_.size() - pos_; }

 private:
  const Blob& blob_;
  std::size_t pos_ = 0;
  std::int64_t step_ = 0;
};

/// Register `blob` as the latest snapshot for `key` (and mirror it to
/// Options::ckpt_dir when set). Counts recover.ckpt.saves/bytes.
void store_blob(const SnapshotKey& key, Blob blob);

/// The latest snapshot for `key`: the in-memory registry first, then the
/// ckpt_dir file (a fresh process resuming a killed one). Empty when none.
Blob latest_blob(const SnapshotKey& key);

/// True when latest_blob(key) would return a non-empty blob.
bool has_latest(const SnapshotKey& key);

/// Test hook: install raw bytes (possibly garbage) as the latest snapshot
/// for `key`, bypassing the save counters — corrupt-snapshot legs use this
/// to prove restore rejects bad blobs with a typed Status.
void inject_blob(const SnapshotKey& key, Blob raw);

/// Drop every registered snapshot (in-memory only; files are left behind).
void clear();

}  // namespace conflux::recover
