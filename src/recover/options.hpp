// Recovery configuration (DESIGN.md "Recovery model"): one env-resolved
// options block shared by the three recovery layers — bounded task retry
// (sched/taskpool), step-granular checkpoint/restart and ABFT checksum
// verification (factor cores + recover/snapshot).
//
// Like support/fault.hpp, configuration comes from the environment (read
// once, at first use) or programmatically (tests and benches; overrides the
// environment until reset()):
//   CONFLUX_CKPT_EVERY    snapshot the factorization state every K outer
//                         steps (0 / unset = checkpointing off; the
//                         recommended production default is
//                         kDefaultCkptEvery)
//   CONFLUX_CKPT_DIR      directory for file-backed snapshots (unset = the
//                         in-memory latest-snapshot registry only; with a
//                         directory, snapshots survive the process and
//                         resume_*() can restart a killed run)
//   CONFLUX_ABFT          1 = maintain a checksum column of the trailing
//                         accumulator every step and sweep-verify it every
//                         abft_every steps (off by default)
//   CONFLUX_ABFT_EVERY    steps between verification sweeps (default
//                         kDefaultAbftEvery; 1 = verify after every step)
//   CONFLUX_TASK_RETRIES  retry budget per retryable pool task for
//                         transient-classified failures (default 3)
#pragma once

#include <cstdint>
#include <string>

namespace conflux::recover {

/// Recommended checkpoint interval when checkpointing is wanted but no
/// K was tuned: frequent enough that a crash loses little work, sparse
/// enough that serialization stays under the bench's 1.05x overhead gate
/// (at K=16 a 32-step run takes one full mid-run snapshot besides the
/// step-0 marker; K=8 spent ~12% of the n=2048 wall on serialization).
inline constexpr std::int64_t kDefaultCkptEvery = 16;

/// Default verification-sweep cadence under ABFT. Checksums are MAINTAINED
/// every step either way; the sweep re-reads the whole live region, so at
/// cadence 1 its memory traffic alone can exceed the bench's 1.10x overhead
/// budget. Corruption surfaces at the next sweep — still well inside the
/// checkpoint interval, so the rollback that follows is identical.
inline constexpr std::int64_t kDefaultAbftEvery = 4;

struct Options {
  std::int64_t ckpt_every = 0;  ///< steps between snapshots; 0 = off
  std::string ckpt_dir;         ///< "" = in-memory registry only
  bool abft = false;            ///< checksum maintenance + periodic sweeps
  std::int64_t abft_every = kDefaultAbftEvery;  ///< steps between sweeps
  int task_retries = 3;         ///< transient-failure retry budget per task
};

/// The active options (programmatic if installed, else environment).
Options options();

/// Install a programmatic configuration (tests/benches).
void configure(const Options& opt);
/// Drop any programmatic configuration and return to the environment's.
void reset();

/// Thread-local checkpoint suppression (DESIGN.md "Solve service"). The
/// snapshot registry keys on (kind, scalar, n, v, grid) — deliberately, so
/// resume_*() can find an interrupted run's state without the caller
/// naming it — but that key is NOT tenant-aware: two service requests
/// factoring same-shaped matrices would overwrite each other's snapshots,
/// and a service churning through requests would clobber a checkpoint a
/// crashed batch run left behind for resume. Service executor threads
/// therefore suppress checkpoint WRITES for the requests they run (ABFT
/// and task retry stay as configured: both are confined to one run).
/// options() reports ckpt_every = 0 / ckpt_dir = "" while a suppression
/// guard is live on the calling thread.
bool checkpoints_suppressed();

class ScopedCheckpointSuppression {
 public:
  ScopedCheckpointSuppression();
  ~ScopedCheckpointSuppression();
  ScopedCheckpointSuppression(const ScopedCheckpointSuppression&) = delete;
  ScopedCheckpointSuppression& operator=(const ScopedCheckpointSuppression&) =
      delete;
};

/// RAII programmatic configuration for tests.
class ScopedOptions {
 public:
  explicit ScopedOptions(const Options& opt) { configure(opt); }
  ~ScopedOptions() { reset(); }
  ScopedOptions(const ScopedOptions&) = delete;
  ScopedOptions& operator=(const ScopedOptions&) = delete;
};

}  // namespace conflux::recover
