// ABFT support: the bit-corruption primitive used by the kBitflip fault
// site. The injected corruption must be *detectable* — a flip in a low
// mantissa bit of a small element would sit inside the checksum tolerance
// and the test could not distinguish "ABFT missed it" from "the flip was
// benign". flip_high_bit therefore flips an exponent bit, scanning from the
// highest downwards until the result is either non-finite or grossly larger
// than the original, which every tolerance in the verifier rejects.
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>

namespace conflux::recover {

inline double flip_high_bit(double x) {
  const auto bits = std::bit_cast<std::uint64_t>(x);
  for (int b = 62; b >= 52; --b) {
    const double y = std::bit_cast<double>(bits ^ (std::uint64_t{1} << b));
    if (!std::isfinite(y) || std::abs(y) > 2.0 * std::abs(x) + 1.0) return y;
  }
  return std::bit_cast<double>(bits ^ (std::uint64_t{1} << 62));
}

inline float flip_high_bit(float x) {
  const auto bits = std::bit_cast<std::uint32_t>(x);
  for (int b = 30; b >= 23; --b) {
    const float y = std::bit_cast<float>(bits ^ (std::uint32_t{1} << b));
    if (!std::isfinite(y) || std::abs(y) > 2.0f * std::abs(x) + 1.0f) return y;
  }
  return std::bit_cast<float>(bits ^ (std::uint32_t{1} << 30));
}

}  // namespace conflux::recover
