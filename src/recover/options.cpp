#include "recover/options.hpp"

#include <cstdlib>
#include <mutex>

namespace conflux::recover {

namespace {

Options env_options() {
  Options opt;
  if (const char* s = std::getenv("CONFLUX_CKPT_EVERY"); s != nullptr && *s != '\0') {
    opt.ckpt_every = std::strtoll(s, nullptr, 10);
    if (opt.ckpt_every < 0) opt.ckpt_every = 0;
  }
  if (const char* s = std::getenv("CONFLUX_CKPT_DIR"); s != nullptr && *s != '\0') {
    opt.ckpt_dir = s;
  }
  if (const char* s = std::getenv("CONFLUX_ABFT"); s != nullptr && *s != '\0') {
    opt.abft = (s[0] == '1' || s[0] == 't' || s[0] == 'T' || s[0] == 'y' || s[0] == 'Y');
  }
  if (const char* s = std::getenv("CONFLUX_ABFT_EVERY"); s != nullptr && *s != '\0') {
    opt.abft_every = std::strtoll(s, nullptr, 10);
    if (opt.abft_every < 1) opt.abft_every = 1;
  }
  if (const char* s = std::getenv("CONFLUX_TASK_RETRIES"); s != nullptr && *s != '\0') {
    const long v = std::strtol(s, nullptr, 10);
    opt.task_retries = v < 0 ? 0 : static_cast<int>(v);
  }
  return opt;
}

struct State {
  std::mutex mu;
  Options opt;
  bool env_loaded = false;
};

State& state() {
  static State s;
  return s;
}

void load_env_locked(State& s) {
  if (!s.env_loaded) {
    s.opt = env_options();
    s.env_loaded = true;
  }
}

}  // namespace

namespace {
// Nesting depth, not a flag: a suppressed executor calling a helper that
// suppresses again must not re-enable checkpoints on inner-guard exit.
thread_local int tls_ckpt_suppressed = 0;
}  // namespace

bool checkpoints_suppressed() { return tls_ckpt_suppressed > 0; }

ScopedCheckpointSuppression::ScopedCheckpointSuppression() {
  ++tls_ckpt_suppressed;
}

ScopedCheckpointSuppression::~ScopedCheckpointSuppression() {
  --tls_ckpt_suppressed;
}

Options options() {
  State& s = state();
  Options opt;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    load_env_locked(s);
    opt = s.opt;
  }
  if (checkpoints_suppressed()) {
    opt.ckpt_every = 0;
    opt.ckpt_dir.clear();
  }
  return opt;
}

void configure(const Options& opt) {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.opt = opt;
  s.env_loaded = true;  // a later reset() re-reads the environment
}

void reset() {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.env_loaded = false;
  load_env_locked(s);
}

}  // namespace conflux::recover
