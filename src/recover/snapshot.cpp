#include "recover/snapshot.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <mutex>
#include <utility>

#include "recover/options.hpp"
#include "sched/rank_parallel.hpp"
#include "support/metrics.hpp"

namespace conflux::recover {

namespace {

// 64-byte header layout (all fields little-endian, the only byte order the
// toolchain targets):
//   [ 0] u32 magic "CFXK"      [ 4] u32 version
//   [ 8] u8  kind              [ 9] u8  scalar    [10] u16 reserved
//   [12] i32 px                [16] i32 py        [20] i32 pz
//   [24] i64 n                 [32] i64 v         [40] i64 step
//   [48] u64 payload size      [56] u64 chunked word-FNV checksum of payload
constexpr std::uint32_t kMagic = 0x4b584643u;  // "CFXK"
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderBytes = 64;

constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;
constexpr std::uint64_t kLaneInit[4] = {
    0xcbf29ce484222325ULL, 0x9e3779b97f4a7c15ULL,
    0xc2b2ae3d27d4eb4fULL, 0x165667b19e3779f9ULL};

/// One chunk's digest: FNV-1a over 8-byte words, interleaved across four
/// independent lanes so the multiply chains pipeline (a single chain runs
/// at ~5 cycles/word), lanes folded with the non-word tail and avalanched.
std::uint64_t digest_range(const std::uint8_t* data, std::size_t bytes) {
  std::uint64_t lanes[4] = {kLaneInit[0], kLaneInit[1], kLaneInit[2],
                            kLaneInit[3]};
  std::size_t i = 0;
  std::uint64_t word_ix = 0;
  for (; i + 8 <= bytes; i += 8, ++word_ix) {
    std::uint64_t w;
    std::memcpy(&w, data + i, 8);
    const auto l = static_cast<std::size_t>(word_ix & 3);
    lanes[l] = (lanes[l] ^ w) * kFnvPrime;
  }
  std::uint64_t h = lanes[0];
  h = (h ^ lanes[1]) * kFnvPrime;
  h = (h ^ lanes[2]) * kFnvPrime;
  h = (h ^ lanes[3]) * kFnvPrime;
  for (; i < bytes; ++i) h = (h ^ data[i]) * kFnvPrime;
  h ^= h >> 32;
  h *= 0xd6e8feb86659fd93ULL;
  h ^= h >> 32;
  return h;
}

/// Payload checksum: the payload is split at fixed 4 MB boundaries, each
/// chunk digested independently (in parallel over the pool — at checkpoint
/// sizes, tens of MB, a serial scan alone would bust the bench's
/// checkpoint-overhead gate), and the ordered chunk digests FNV-folded into
/// one value. Chunk boundaries depend only on the payload size, so the
/// checksum is a pure function of the bytes at any thread count.
constexpr std::size_t kChecksumChunkBytes = std::size_t{4} << 20;

std::uint64_t payload_checksum(const std::uint8_t* data, std::size_t bytes) {
  const std::size_t nchunks =
      bytes == 0 ? 0 : (bytes - 1) / kChecksumChunkBytes + 1;
  std::vector<std::uint64_t> digests(nchunks);
  sched::parallel_ranks(static_cast<index_t>(nchunks), [&](index_t c) {
    const std::size_t lo = static_cast<std::size_t>(c) * kChecksumChunkBytes;
    const std::size_t len = std::min(kChecksumChunkBytes, bytes - lo);
    digests[static_cast<std::size_t>(c)] = digest_range(data + lo, len);
  });
  std::uint64_t h = kLaneInit[0];
  for (const std::uint64_t d : digests) h = (h ^ d) * kFnvPrime;
  h ^= h >> 32;
  h *= 0xd6e8feb86659fd93ULL;
  h ^= h >> 32;
  return h;
}

template <typename T>
void write_at(Blob& blob, std::size_t off, T value) {
  std::memcpy(blob.data() + off, &value, sizeof(T));
}

template <typename T>
T read_at(const Blob& blob, std::size_t off) {
  T value;
  std::memcpy(&value, blob.data() + off, sizeof(T));
  return value;
}

[[noreturn]] void reject(const std::string& what) {
  throw status_error(Status(StatusCode::kCheckpointInvalid, what));
}

const metrics::Counter& saves_counter() {
  static const metrics::Counter c("recover.ckpt.saves");
  return c;
}
const metrics::Counter& bytes_counter() {
  static const metrics::Counter c("recover.ckpt.bytes");
  return c;
}

struct Registry {
  std::mutex mu;
  std::map<std::string, Blob> blobs;
  // Replaced snapshots, kept for their capacity: the next SnapshotWriter of
  // the same key reuses the allocation, so steady-state checkpointing does
  // no large allocations (and takes no fresh-page faults).
  std::map<std::string, Blob> scratch;
};

Registry& registry() {
  static Registry r;
  return r;
}

Blob take_scratch(const SnapshotKey& key) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.scratch.find(key.to_string());
  if (it == r.scratch.end()) return {};
  Blob b = std::move(it->second);
  r.scratch.erase(it);
  return b;
}

std::string file_path(const std::string& dir, const SnapshotKey& key) {
  return dir + "/" + key.to_string() + ".ckpt";
}

/// Atomic file mirror: write the whole blob to "<path>.tmp", then rename.
/// A reader never sees a half-written snapshot; at worst the rename is lost
/// and the previous snapshot survives. Failures are swallowed — the
/// in-memory registry already holds the blob, and a missing file mirror
/// only matters to a cross-process resume, which will then report "no
/// snapshot" rather than read garbage.
void mirror_to_file(const std::string& dir, const SnapshotKey& key,
                    const Blob& blob) {
  const std::string path = file_path(dir, key);
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return;
  const bool ok =
      std::fwrite(blob.data(), 1, blob.size(), f) == blob.size();
  const bool closed = std::fclose(f) == 0;
  if (ok && closed) {
    std::rename(tmp.c_str(), path.c_str());
  } else {
    std::remove(tmp.c_str());
  }
}

Blob load_from_file(const std::string& dir, const SnapshotKey& key) {
  std::FILE* f = std::fopen(file_path(dir, key).c_str(), "rb");
  if (f == nullptr) return {};
  Blob blob;
  std::uint8_t buf[1 << 16];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    blob.insert(blob.end(), buf, buf + got);
  }
  std::fclose(f);
  return blob;
}

}  // namespace

std::string SnapshotKey::to_string() const {
  std::string out = kind == FactorKind::kLu ? "lu" : "chol";
  out += '-';
  out += scalar;
  out += "-n" + std::to_string(n) + "-v" + std::to_string(v);
  out += "-g" + std::to_string(px) + "x" + std::to_string(py) + "x" +
         std::to_string(pz);
  return out;
}

SnapshotWriter::SnapshotWriter(const SnapshotKey& key, std::int64_t step)
    : blob_(take_scratch(key)) {
  blob_.assign(kHeaderBytes, 0);  // assign keeps the recycled capacity
  write_at<std::uint32_t>(blob_, 0, kMagic);
  write_at<std::uint32_t>(blob_, 4, kVersion);
  blob_[8] = static_cast<std::uint8_t>(key.kind);
  blob_[9] = static_cast<std::uint8_t>(key.scalar);
  write_at<std::int32_t>(blob_, 12, key.px);
  write_at<std::int32_t>(blob_, 16, key.py);
  write_at<std::int32_t>(blob_, 20, key.pz);
  write_at<std::int64_t>(blob_, 24, key.n);
  write_at<std::int64_t>(blob_, 32, key.v);
  write_at<std::int64_t>(blob_, 40, step);
}

void SnapshotWriter::put_i64(std::int64_t value) {
  put_bytes(&value, sizeof(value));
}

void SnapshotWriter::put_f64(double value) { put_bytes(&value, sizeof(value)); }

void SnapshotWriter::put_bytes(const void* data, std::size_t bytes) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  blob_.insert(blob_.end(), p, p + bytes);
}

void SnapshotWriter::put_indices(const std::vector<index_t>& values) {
  put_i64(static_cast<std::int64_t>(values.size()));
  put_bytes(values.data(), values.size() * sizeof(index_t));
}

Blob SnapshotWriter::seal() && {
  const std::uint64_t payload = blob_.size() - kHeaderBytes;
  write_at<std::uint64_t>(blob_, 48, payload);
  write_at<std::uint64_t>(
      blob_, 56, payload_checksum(blob_.data() + kHeaderBytes, payload));
  return std::move(blob_);
}

SnapshotReader::SnapshotReader(const SnapshotKey& key, const Blob& blob)
    : blob_(blob), pos_(kHeaderBytes) {
  if (blob.size() < kHeaderBytes) reject("snapshot shorter than its header");
  if (read_at<std::uint32_t>(blob, 0) != kMagic) reject("bad snapshot magic");
  if (read_at<std::uint32_t>(blob, 4) != kVersion) {
    reject("unsupported snapshot version " +
           std::to_string(read_at<std::uint32_t>(blob, 4)));
  }
  SnapshotKey got;
  got.kind = static_cast<FactorKind>(blob[8]);
  got.scalar = static_cast<char>(blob[9]);
  got.px = read_at<std::int32_t>(blob, 12);
  got.py = read_at<std::int32_t>(blob, 16);
  got.pz = read_at<std::int32_t>(blob, 20);
  got.n = read_at<std::int64_t>(blob, 24);
  got.v = read_at<std::int64_t>(blob, 32);
  if (!(got == key)) {
    reject("snapshot is for " + got.to_string() + ", expected " +
           key.to_string());
  }
  step_ = read_at<std::int64_t>(blob, 40);
  if (step_ < 0) reject("negative snapshot step");
  const std::uint64_t payload = read_at<std::uint64_t>(blob, 48);
  if (payload != blob.size() - kHeaderBytes) {
    reject("snapshot payload size mismatch (header says " +
           std::to_string(payload) + ", blob carries " +
           std::to_string(blob.size() - kHeaderBytes) + ")");
  }
  const std::uint64_t want = read_at<std::uint64_t>(blob, 56);
  const std::uint64_t have = payload_checksum(blob.data() + kHeaderBytes, payload);
  if (want != have) reject("snapshot checksum mismatch");
}

std::int64_t SnapshotReader::get_i64() {
  std::int64_t value;
  get_bytes(&value, sizeof(value));
  return value;
}

double SnapshotReader::get_f64() {
  double value;
  get_bytes(&value, sizeof(value));
  return value;
}

void SnapshotReader::get_bytes(void* out, std::size_t bytes) {
  if (bytes > blob_.size() - pos_) reject("snapshot payload underrun");
  std::memcpy(out, blob_.data() + pos_, bytes);
  pos_ += bytes;
}

std::vector<index_t> SnapshotReader::get_indices() {
  const std::int64_t count = get_i64();
  if (count < 0 ||
      static_cast<std::uint64_t>(count) >
          (blob_.size() - pos_) / sizeof(index_t)) {
    reject("snapshot index vector overruns the payload");
  }
  std::vector<index_t> values(static_cast<std::size_t>(count));
  get_bytes(values.data(), values.size() * sizeof(index_t));
  return values;
}

void store_blob(const SnapshotKey& key, Blob blob) {
  saves_counter().add(1.0);
  bytes_counter().add(static_cast<double>(blob.size()));
  const Options opt = options();
  if (!opt.ckpt_dir.empty()) mirror_to_file(opt.ckpt_dir, key, blob);
  Registry& r = registry();
  const std::string name = key.to_string();
  std::lock_guard<std::mutex> lock(r.mu);
  Blob& slot = r.blobs[name];
  r.scratch[name] = std::move(slot);  // recycle the replaced allocation
  slot = std::move(blob);
}

Blob latest_blob(const SnapshotKey& key) {
  {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    auto it = r.blobs.find(key.to_string());
    if (it != r.blobs.end()) return it->second;
  }
  const Options opt = options();
  if (!opt.ckpt_dir.empty()) return load_from_file(opt.ckpt_dir, key);
  return {};
}

bool has_latest(const SnapshotKey& key) { return !latest_blob(key).empty(); }

void inject_blob(const SnapshotKey& key, Blob raw) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.blobs[key.to_string()] = std::move(raw);
}

void clear() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.blobs.clear();
  r.scratch.clear();
}

}  // namespace conflux::recover
