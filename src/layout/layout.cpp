#include "layout/layout.hpp"

#include <map>

#include "support/metrics.hpp"

namespace conflux::layout {

namespace {

// Measured layout-redistribution traffic: bytes actually copied between
// local stores in Real mode (DESIGN.md "Observability").
const metrics::Counter g_redistribute_bytes("dm.layout_redistribute.bytes");

}  // namespace

index_t BlockCyclicLayout::numroc(index_t n, index_t blk, int p, int procs) {
  expects(n >= 0 && blk >= 1 && p >= 0 && p < procs, "bad numroc arguments");
  const index_t full_cycles = n / (blk * procs);
  index_t count = full_cycles * blk;
  const index_t remainder = n - full_cycles * blk * procs;
  const index_t my_start = static_cast<index_t>(p) * blk;
  if (remainder > my_start) {
    count += std::min(blk, remainder - my_start);
  }
  return count;
}

ScalapackDesc make_desc(const BlockCyclicLayout& layout, int prow) {
  layout.validate();
  ScalapackDesc d;
  d.m = static_cast<int>(layout.rows);
  d.n = static_cast<int>(layout.cols);
  d.mb = static_cast<int>(layout.mb);
  d.nb = static_cast<int>(layout.nb);
  d.rsrc = 0;
  d.csrc = 0;
  // Row-major local storage: lld is the number of local columns of the
  // widest process column; ScaLAPACK (column-major) uses local rows — we
  // keep the analogous quantity for our row-major locals.
  d.lld = static_cast<int>(std::max<index_t>(1, layout.local_cols(0)));
  (void)prow;
  return d;
}

BlockCyclicLayout layout_from_desc(const ScalapackDesc& desc, int pr, int pc,
                                   int rank_base) {
  expects(desc.rsrc == 0 && desc.csrc == 0, "only rsrc = csrc = 0 supported");
  BlockCyclicLayout layout;
  layout.rows = desc.m;
  layout.cols = desc.n;
  layout.mb = desc.mb;
  layout.nb = desc.nb;
  layout.pr = pr;
  layout.pc = pc;
  layout.rank_base = rank_base;
  layout.validate();
  return layout;
}

DistMatrix::DistMatrix(BlockCyclicLayout layout) : layout_(layout) {
  layout_.validate();
  locals_.reserve(static_cast<std::size_t>(layout_.num_ranks()));
  for (int r = 0; r < layout_.pr; ++r) {
    for (int c = 0; c < layout_.pc; ++c) {
      locals_.emplace_back(layout_.local_rows(r), layout_.local_cols(c));
    }
  }
}

MatrixD& DistMatrix::local(int prow, int pcol) {
  expects(prow >= 0 && prow < layout_.pr && pcol >= 0 && pcol < layout_.pc,
          "process out of grid");
  return locals_[static_cast<std::size_t>(prow * layout_.pc + pcol)];
}

const MatrixD& DistMatrix::local(int prow, int pcol) const {
  expects(prow >= 0 && prow < layout_.pr && pcol >= 0 && pcol < layout_.pc,
          "process out of grid");
  return locals_[static_cast<std::size_t>(prow * layout_.pc + pcol)];
}

double DistMatrix::get(index_t i, index_t j) const {
  expects(i >= 0 && i < layout_.rows && j >= 0 && j < layout_.cols,
          "element out of range");
  return local(layout_.prow_of_row(i), layout_.pcol_of_col(j))(
      layout_.local_row(i), layout_.local_col(j));
}

void DistMatrix::set(index_t i, index_t j, double value) {
  expects(i >= 0 && i < layout_.rows && j >= 0 && j < layout_.cols,
          "element out of range");
  local(layout_.prow_of_row(i), layout_.pcol_of_col(j))(
      layout_.local_row(i), layout_.local_col(j)) = value;
}

DistMatrix DistMatrix::from_global(ConstViewD a, BlockCyclicLayout layout) {
  expects(a.rows() == layout.rows && a.cols() == layout.cols,
          "global matrix must match the layout shape");
  DistMatrix dist(layout);
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t j = 0; j < a.cols(); ++j) dist.set(i, j, a(i, j));
  }
  return dist;
}

MatrixD DistMatrix::to_global() const {
  MatrixD a(layout_.rows, layout_.cols);
  for (index_t i = 0; i < layout_.rows; ++i) {
    for (index_t j = 0; j < layout_.cols; ++j) a(i, j) = get(i, j);
  }
  return a;
}

double DistMatrix::total_words() const {
  double sum = 0.0;
  for (const auto& l : locals_) sum += static_cast<double>(l.size());
  return sum;
}

namespace {

// Enumerate maximal contiguous column runs of rows that stay within one
// (source rank, destination rank) pair, invoking fn(i, j0, j1, src, dst) for
// the half-open column range [j0, j1) of row i. Aggregating runs keeps the
// message counting closer to what a packed COSTA transfer would issue.
template <typename Fn>
void for_each_run(const BlockCyclicLayout& src, const BlockCyclicLayout& dst,
                  Fn&& fn) {
  for (index_t i = 0; i < src.rows; ++i) {
    index_t j0 = 0;
    int cur_src = src.rank_of(i, 0);
    int cur_dst = dst.rank_of(i, 0);
    for (index_t j = 1; j <= src.cols; ++j) {
      int s = 0, d = 0;
      if (j < src.cols) {
        s = src.rank_of(i, j);
        d = dst.rank_of(i, j);
      }
      if (j == src.cols || s != cur_src || d != cur_dst) {
        fn(i, j0, j, cur_src, cur_dst);
        if (j < src.cols) {
          j0 = j;
          cur_src = s;
          cur_dst = d;
        }
      }
    }
  }
}

}  // namespace

DistMatrix redistribute(xsim::Machine& m, const DistMatrix& src,
                        const BlockCyclicLayout& target) {
  expects(src.layout().rows == target.rows && src.layout().cols == target.cols,
          "redistribution cannot reshape");
  DistMatrix dst(target);
  // Aggregate words per communicating pair so each pair is charged one
  // message (COSTA packs all blocks for a peer into one transfer).
  std::map<std::pair<int, int>, double> words;
  double moved = 0.0;
  for_each_run(src.layout(), target, [&](index_t i, index_t j0, index_t j1, int s,
                                         int d) {
    if (s != d) words[{s, d}] += static_cast<double>(j1 - j0);
    if (m.real()) {
      for (index_t j = j0; j < j1; ++j) dst.set(i, j, src.get(i, j));
      moved += static_cast<double>(j1 - j0);
    }
  });
  g_redistribute_bytes.add(moved * static_cast<double>(sizeof(double)));
  for (const auto& [pair, count] : words) {
    m.charge_transfer(pair.first, pair.second, count);
  }
  m.step_barrier();
  return dst;
}

double redistribute_cost(xsim::Machine& m, const BlockCyclicLayout& src,
                         const BlockCyclicLayout& target) {
  expects(src.rows == target.rows && src.cols == target.cols,
          "redistribution cannot reshape");
  std::map<std::pair<int, int>, double> words;
  for_each_run(src, target, [&](index_t, index_t j0, index_t j1, int s, int d) {
    if (s != d) words[{s, d}] += static_cast<double>(j1 - j0);
  });
  double total = 0.0;
  for (const auto& [pair, count] : words) {
    m.charge_transfer(pair.first, pair.second, count);
    total += count;
  }
  m.step_barrier();
  return total;
}

}  // namespace conflux::layout
