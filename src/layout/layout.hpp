// Block-cyclic matrix layouts, ScaLAPACK array descriptors, and a COSTA-like
// redistribution engine (the paper's Section 8 "Data distribution": COnfLUX
// exposes ScaLAPACK wrappers by transforming matrices between layouts).
#pragma once

#include <vector>

#include "support/check.hpp"
#include "tensor/matrix.hpp"
#include "xsim/machine.hpp"

namespace conflux::layout {

/// A 2D block-cyclic distribution of an m x n matrix over a Pr x Pc process
/// grid with mb x nb blocks (ScaLAPACK semantics; process grid is row-major:
/// rank = prow * Pc + pcol, offset by rank_base for embedding into a larger
/// machine).
struct BlockCyclicLayout {
  index_t rows = 0;
  index_t cols = 0;
  index_t mb = 1;
  index_t nb = 1;
  int pr = 1;
  int pc = 1;
  int rank_base = 0;  ///< machine rank of process (0, 0)

  void validate() const {
    expects(rows >= 0 && cols >= 0, "bad matrix shape");
    expects(mb >= 1 && nb >= 1, "block sizes must be positive");
    expects(pr >= 1 && pc >= 1, "process grid must be positive");
  }

  int num_ranks() const { return pr * pc; }

  int prow_of_row(index_t i) const { return static_cast<int>((i / mb) % pr); }
  int pcol_of_col(index_t j) const { return static_cast<int>((j / nb) % pc); }
  int rank_of(index_t i, index_t j) const {
    return rank_base + prow_of_row(i) * pc + pcol_of_col(j);
  }

  /// Local row index of global row i on its owning process row.
  index_t local_row(index_t i) const {
    return (i / (static_cast<index_t>(pr) * mb)) * mb + i % mb;
  }
  index_t local_col(index_t j) const {
    return (j / (static_cast<index_t>(pc) * nb)) * nb + j % nb;
  }

  /// Number of local rows on process row `prow` (ScaLAPACK numroc).
  index_t local_rows(int prow) const { return numroc(rows, mb, prow, pr); }
  index_t local_cols(int pcol) const { return numroc(cols, nb, pcol, pc); }

  /// ScaLAPACK's NUMROC: number of rows/cols of a block-cyclically
  /// distributed dimension owned by process `p` of `procs`.
  static index_t numroc(index_t n, index_t blk, int p, int procs);
};

/// The nine-integer ScaLAPACK array descriptor (DESC_), for out-of-the-box
/// interface compatibility with codes that carry descriptors around.
struct ScalapackDesc {
  int dtype = 1;  ///< 1 = dense matrix
  int ctxt = 0;   ///< BLACS context (the machine, in this simulator)
  int m = 0;
  int n = 0;
  int mb = 0;
  int nb = 0;
  int rsrc = 0;
  int csrc = 0;
  int lld = 0;  ///< local leading dimension
};

/// Build a descriptor from a layout (rsrc/csrc fixed at 0 here).
ScalapackDesc make_desc(const BlockCyclicLayout& layout, int prow);

/// Layout described by a ScaLAPACK descriptor on a Pr x Pc grid.
BlockCyclicLayout layout_from_desc(const ScalapackDesc& desc, int pr, int pc,
                                   int rank_base = 0);

/// A matrix physically distributed across the simulated machine: each rank
/// holds its block-cyclic local part contiguously (ScaLAPACK local storage).
class DistMatrix {
 public:
  DistMatrix() = default;
  explicit DistMatrix(BlockCyclicLayout layout);

  const BlockCyclicLayout& layout() const { return layout_; }

  /// Local storage of one process (indexed by grid position, not machine rank).
  MatrixD& local(int prow, int pcol);
  const MatrixD& local(int prow, int pcol) const;

  double get(index_t i, index_t j) const;
  void set(index_t i, index_t j, double value);

  /// Scatter a replicated global matrix into the distribution (test helper;
  /// charges no communication).
  static DistMatrix from_global(ConstViewD a, BlockCyclicLayout layout);

  /// Gather to a replicated global matrix (test helper; no communication).
  MatrixD to_global() const;

  /// Total words of local storage across all ranks.
  double total_words() const;

 private:
  BlockCyclicLayout layout_;
  std::vector<MatrixD> locals_;  // pr * pc entries, row-major grid order
};

/// COSTA-substitute: redistribute src into a new DistMatrix with layout
/// `target`, charging each inter-rank transfer on the machine (one message
/// per communicating pair plus the exact word count). Shapes must match.
DistMatrix redistribute(xsim::Machine& m, const DistMatrix& src,
                        const BlockCyclicLayout& target);

/// Communication cost of redistributing without moving data (Trace path):
/// returns the total words that change ranks and charges the machine.
double redistribute_cost(xsim::Machine& m, const BlockCyclicLayout& src,
                         const BlockCyclicLayout& target);

}  // namespace conflux::layout
