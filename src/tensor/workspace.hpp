// Step-reusable workspace arena for the Real-mode factorization data path.
//
// The factorization schedules need a handful of scratch matrices whose shapes
// change every outer iteration (pivot-row panels, candidate stacks, small
// factored blocks). Allocating them per step costs an O(n*v) heap round trip
// per iteration and, worse, loses page warmth between steps. A Workspace
// owns one growable buffer per named slot: requesting a view reuses the
// slot's storage whenever it is already large enough, so the buffers routed
// through it are allocated once per factorization, not once per step.
//
// Rules:
//   - a slot hands out ONE live view at a time: re-requesting a slot may
//     reallocate and invalidates previous views of that slot;
//   - contents are unspecified unless the zeroed() variant is used;
//   - slots never shrink, so words() is also the high-water mark.
#pragma once

#include <vector>

#include "tensor/matrix.hpp"

namespace conflux {

class Workspace {
 public:
  /// A rows x cols view (ld == cols) over slot `slot`; contents unspecified.
  ViewD mat(std::size_t slot, index_t rows, index_t cols) {
    return ViewD(ensure(slot, rows * cols), rows, cols, cols);
  }

  /// Like mat(), but with every element set to zero.
  ViewD zeroed(std::size_t slot, index_t rows, index_t cols) {
    ViewD v = mat(slot, rows, cols);
    std::fill_n(v.data(), static_cast<std::size_t>(rows * cols), 0.0);
    return v;
  }

  /// Total doubles held across all slots (monotone: also the peak).
  double words() const {
    double total = 0.0;
    for (const auto& s : slots_) total += static_cast<double>(s.size());
    return total;
  }

 private:
  double* ensure(std::size_t slot, index_t count) {
    expects(count >= 0, "workspace request must be non-negative");
    if (slot >= slots_.size()) slots_.resize(slot + 1);
    auto& buf = slots_[slot];
    if (buf.size() < static_cast<std::size_t>(count)) {
      buf.resize(static_cast<std::size_t>(count));
    }
    return buf.data();
  }

  std::vector<std::vector<double>> slots_;
};

}  // namespace conflux
