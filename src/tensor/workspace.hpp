// Step-reusable workspace arena for the Real-mode factorization data path.
//
// The factorization schedules need a handful of scratch matrices whose shapes
// change every outer iteration (pivot-row panels, candidate stacks, small
// factored blocks). Allocating them per step costs an O(n*v) heap round trip
// per iteration and, worse, loses page warmth between steps. A Workspace
// owns one growable buffer per named slot: requesting a view reuses the
// slot's storage whenever it is already large enough, so the buffers routed
// through it are allocated once per factorization, not once per step.
//
// The arena is type-erased at the API: mat<T>() serves any scalar from one
// Workspace object, so the fp32 and fp64 factorization cores share a single
// arena type. Underneath, each scalar type gets its own typed slot store —
// deliberately NOT one byte buffer reinterpret_cast per request, which
// would read/write T lvalues where no T objects were ever created (UB under
// the C++ object-lifetime rules, even though every current compiler
// tolerates it). A run only ever uses one scalar, so the per-type stores
// cost nothing extra in practice.
//
// Rules:
//   - a slot hands out ONE live view at a time: re-requesting a slot may
//     reallocate and invalidates previous views of that slot;
//   - contents are unspecified unless the zeroed() variant is used;
//   - slots never shrink, so words() is also the high-water mark.
#pragma once

#include <vector>

#include "tensor/matrix.hpp"

namespace conflux {

class Workspace {
 public:
  /// A rows x cols view (ld == cols) over slot `slot`; contents unspecified.
  template <typename T = double>
  MatrixView<T> mat(std::size_t slot, index_t rows, index_t cols) {
    return MatrixView<T>(ensure(store<T>(), slot, rows * cols), rows, cols, cols);
  }

  /// Like mat(), but with every element set to zero.
  template <typename T = double>
  MatrixView<T> zeroed(std::size_t slot, index_t rows, index_t cols) {
    MatrixView<T> v = mat<T>(slot, rows, cols);
    std::fill_n(v.data(), static_cast<std::size_t>(rows * cols), T{});
    return v;
  }

  /// Total size held across all slots in 8-byte words (monotone: also the
  /// peak). Counted in fp64-equivalent words so the workspace accounting of
  /// fp32 runs reflects their halved byte footprint.
  double words() const {
    double bytes = 0.0;
    for (const auto& s : dslots_) bytes += static_cast<double>(s.size() * sizeof(double));
    for (const auto& s : fslots_) bytes += static_cast<double>(s.size() * sizeof(float));
    return bytes / static_cast<double>(sizeof(double));
  }

 private:
  template <typename T>
  std::vector<std::vector<T>>& store();

  template <typename T>
  static T* ensure(std::vector<std::vector<T>>& slots, std::size_t slot,
                   index_t count) {
    expects(count >= 0, "workspace request must be non-negative");
    if (slot >= slots.size()) slots.resize(slot + 1);
    auto& buf = slots[slot];
    if (buf.size() < static_cast<std::size_t>(count)) {
      buf.resize(static_cast<std::size_t>(count));
    }
    return buf.data();
  }

  std::vector<std::vector<double>> dslots_;
  std::vector<std::vector<float>> fslots_;
};

template <>
inline std::vector<std::vector<double>>& Workspace::store<double>() {
  return dslots_;
}
template <>
inline std::vector<std::vector<float>>& Workspace::store<float>() {
  return fslots_;
}

}  // namespace conflux
