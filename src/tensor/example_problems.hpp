// Workload-shaped problem generators from the paper's Section 9
// motivations, shared by the examples, the solve-service tests, and the
// serve-throughput bench (so the traffic they model is literally the same
// matrices the examples document).
//
//  - K-FAC (machine learning): a damped empirical covariance Kronecker
//    factor A = G G^T / m + lambda I — SPD, moderately conditioned, the
//    repeated-inversion workload of second-order optimizers.
//  - DFT (physical chemistry): a Gaussian-decay synthetic overlap matrix
//    S_ij = exp(-|r_i - r_j|^2 / 2 sigma^2) + 0.1 I over a random atom
//    cloud — SPD with the decaying structure of real basis-set overlaps.
//
// Both are deterministic in (size, seed): the service tests rely on that to
// recompute serial goldens bitwise.
#pragma once

#include <cstdint>

#include "tensor/matrix.hpp"

namespace conflux {

/// K-FAC Kronecker factor: G is n x (n/2) uniform, A = G G^T / (n/2) +
/// 1e-2 I, symmetrized. SPD by construction.
MatrixD kfac_kronecker_factor(index_t n, std::uint64_t seed);

/// DFT overlap matrix for `atoms` atoms in a unit-density box with Gaussian
/// width `sigma` (the examples use 0.8). SPD by construction.
MatrixD dft_overlap_matrix(index_t atoms, double sigma, std::uint64_t seed);

/// Residual bound both examples (and the example smoke tests) assert on
/// their Cholesky factors: xblas::cholesky_residual is already n*eps-scaled
/// (a normwise backward-error ratio), so a healthy factorization sits at
/// O(1) and anything past the bound means the factorization rotted.
inline constexpr double kExampleResidualBound = 300.0;

/// Max-norm bound for an example's solve check max_ij |A x - b|_ij, scaled
/// by n * ||A||_max * eps: loose enough for the examples' moderately
/// conditioned SPD systems, tight enough that a broken solve (wrong
/// triangle, stale factors) overshoots it by orders of magnitude.
double example_solve_bound(ConstMatrixView<double> a);

}  // namespace conflux
