#include "tensor/example_problems.hpp"

#include <array>
#include <cmath>
#include <limits>
#include <vector>

#include "blas/blas.hpp"
#include "support/rng.hpp"
#include "tensor/random_matrix.hpp"

namespace conflux {

MatrixD kfac_kronecker_factor(index_t n, std::uint64_t seed) {
  const index_t batch = n / 2;
  const MatrixD gradients = random_matrix(n, batch, seed);
  MatrixD a(n, n, 0.0);
  xblas::syrk(xblas::UpLo::Lower, xblas::Trans::None,
              1.0 / static_cast<double>(batch), gradients.view(), 0.0, a.view());
  for (index_t i = 0; i < n; ++i) {
    a(i, i) += 1e-2;  // Tikhonov damping, as K-FAC uses
    for (index_t j = i + 1; j < n; ++j) a(i, j) = a(j, i);
  }
  return a;
}

MatrixD dft_overlap_matrix(index_t atoms, double sigma, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::array<double, 3>> pos(static_cast<std::size_t>(atoms));
  const double box = std::cbrt(static_cast<double>(atoms));
  for (auto& r : pos) {
    r = {rng.uniform(0.0, box), rng.uniform(0.0, box), rng.uniform(0.0, box)};
  }
  MatrixD s(atoms, atoms);
  for (index_t i = 0; i < atoms; ++i) {
    for (index_t j = 0; j <= i; ++j) {
      double d2 = 0.0;
      for (int k = 0; k < 3; ++k) {
        const double d = pos[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)] -
                         pos[static_cast<std::size_t>(j)][static_cast<std::size_t>(k)];
        d2 += d * d;
      }
      const double v = std::exp(-d2 / (2.0 * sigma * sigma));
      s(i, j) = v;
      s(j, i) = v;
    }
    s(i, i) += 0.1;  // basis regularization keeps S well-conditioned
  }
  return s;
}

double example_solve_bound(ConstMatrixView<double> a) {
  double amax = 0.0;
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t j = 0; j < a.cols(); ++j) {
      amax = std::max(amax, std::abs(a(i, j)));
    }
  }
  return 1e4 * static_cast<double>(a.rows()) * amax *
         std::numeric_limits<double>::epsilon();
}

}  // namespace conflux
