#include "tensor/random_matrix.hpp"

#include "support/rng.hpp"

namespace conflux {

MatrixD random_matrix(index_t rows, index_t cols, std::uint64_t seed) {
  Rng rng(seed);
  MatrixD a(rows, cols);
  for (index_t i = 0; i < rows; ++i) {
    for (index_t j = 0; j < cols; ++j) a(i, j) = rng.uniform(-1.0, 1.0);
  }
  return a;
}

MatrixD random_dominant_matrix(index_t n, std::uint64_t seed) {
  MatrixD a = random_matrix(n, n, seed);
  for (index_t i = 0; i < n; ++i) a(i, i) += static_cast<double>(n);
  return a;
}

MatrixD random_spd_matrix(index_t n, std::uint64_t seed) {
  const MatrixD b = random_matrix(n, n, seed);
  MatrixD a(n, n);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j <= i; ++j) {
      double sum = 0.0;
      for (index_t k = 0; k < n; ++k) sum += b(i, k) * b(j, k);
      a(i, j) = sum;
      a(j, i) = sum;
    }
    a(i, i) += static_cast<double>(n);
  }
  return a;
}

}  // namespace conflux
