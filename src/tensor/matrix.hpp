// Dense row-major matrices and non-owning strided views.
//
// The whole repository works in terms of these types: the from-scratch BLAS
// (src/blas) operates on views, the simulator's per-rank tiles are Matrix
// objects, and examples exchange Matrix values with the factorization API.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "support/check.hpp"

namespace conflux {

using index_t = std::ptrdiff_t;

template <typename T>
class MatrixView;
template <typename T>
class ConstMatrixView;

/// Owning dense matrix, row-major, contiguous (leading dimension == cols).
template <typename T>
class Matrix {
 public:
  Matrix() = default;

  Matrix(index_t rows, index_t cols, T fill = T{})
      : rows_(rows), cols_(cols), data_(static_cast<std::size_t>(rows * cols), fill) {
    expects(rows >= 0 && cols >= 0, "matrix dimensions must be non-negative");
  }

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t size() const { return rows_ * cols_; }
  bool empty() const { return size() == 0; }

  T& operator()(index_t i, index_t j) {
    return data_[static_cast<std::size_t>(i * cols_ + j)];
  }
  const T& operator()(index_t i, index_t j) const {
    return data_[static_cast<std::size_t>(i * cols_ + j)];
  }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  MatrixView<T> view();
  ConstMatrixView<T> view() const;
  MatrixView<T> block(index_t i0, index_t j0, index_t nrows, index_t ncols);
  ConstMatrixView<T> block(index_t i0, index_t j0, index_t nrows, index_t ncols) const;

  void fill(T value) { data_.assign(data_.size(), value); }

  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<T> data_;
};

/// Non-owning mutable view with an explicit leading dimension (row stride).
template <typename T>
class MatrixView {
 public:
  MatrixView() = default;
  MatrixView(T* data, index_t rows, index_t cols, index_t ld)
      : data_(data), rows_(rows), cols_(cols), ld_(ld) {
    CONFLUX_CHECK(rows >= 0 && cols >= 0 && ld >= cols, "invalid view geometry");
  }

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t ld() const { return ld_; }

  T& operator()(index_t i, index_t j) const {
    return data_[static_cast<std::size_t>(i * ld_ + j)];
  }

  T* data() const { return data_; }
  T* row(index_t i) const { return data_ + i * ld_; }

  MatrixView block(index_t i0, index_t j0, index_t nrows, index_t ncols) const {
    CONFLUX_CHECK(i0 >= 0 && j0 >= 0 && i0 + nrows <= rows_ && j0 + ncols <= cols_,
                  "block out of range");
    return MatrixView(data_ + i0 * ld_ + j0, nrows, ncols, ld_);
  }

  operator ConstMatrixView<T>() const;

 private:
  T* data_ = nullptr;
  index_t rows_ = 0;
  index_t cols_ = 0;
  index_t ld_ = 0;
};

/// Non-owning read-only view.
template <typename T>
class ConstMatrixView {
 public:
  ConstMatrixView() = default;
  ConstMatrixView(const T* data, index_t rows, index_t cols, index_t ld)
      : data_(data), rows_(rows), cols_(cols), ld_(ld) {
    CONFLUX_CHECK(rows >= 0 && cols >= 0 && ld >= cols, "invalid view geometry");
  }

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  index_t ld() const { return ld_; }

  const T& operator()(index_t i, index_t j) const {
    return data_[static_cast<std::size_t>(i * ld_ + j)];
  }

  const T* data() const { return data_; }
  const T* row(index_t i) const { return data_ + i * ld_; }

  ConstMatrixView block(index_t i0, index_t j0, index_t nrows, index_t ncols) const {
    CONFLUX_CHECK(i0 >= 0 && j0 >= 0 && i0 + nrows <= rows_ && j0 + ncols <= cols_,
                  "block out of range");
    return ConstMatrixView(data_ + i0 * ld_ + j0, nrows, ncols, ld_);
  }

 private:
  const T* data_ = nullptr;
  index_t rows_ = 0;
  index_t cols_ = 0;
  index_t ld_ = 0;
};

template <typename T>
MatrixView<T>::operator ConstMatrixView<T>() const {
  return ConstMatrixView<T>(data_, rows_, cols_, ld_);
}

template <typename T>
MatrixView<T> Matrix<T>::view() {
  return MatrixView<T>(data(), rows_, cols_, cols_);
}

template <typename T>
ConstMatrixView<T> Matrix<T>::view() const {
  return ConstMatrixView<T>(data(), rows_, cols_, cols_);
}

template <typename T>
MatrixView<T> Matrix<T>::block(index_t i0, index_t j0, index_t nrows, index_t ncols) {
  return view().block(i0, j0, nrows, ncols);
}

template <typename T>
ConstMatrixView<T> Matrix<T>::block(index_t i0, index_t j0, index_t nrows,
                                    index_t ncols) const {
  return view().block(i0, j0, nrows, ncols);
}

/// Copy the contents of src into dst; shapes must match.
template <typename T>
void copy(ConstMatrixView<T> src, MatrixView<T> dst) {
  expects(src.rows() == dst.rows() && src.cols() == dst.cols(),
          "copy requires matching shapes");
  for (index_t i = 0; i < src.rows(); ++i) {
    for (index_t j = 0; j < src.cols(); ++j) dst(i, j) = src(i, j);
  }
}

/// Convert src into dst element by element (value-preserving widening, or
/// round-to-nearest narrowing); shapes must match. The mixed-precision
/// drivers use this to move panels between the fp32 factors and the fp64
/// refinement iterate.
template <typename S, typename D>
void convert(ConstMatrixView<S> src, MatrixView<D> dst) {
  expects(src.rows() == dst.rows() && src.cols() == dst.cols(),
          "convert requires matching shapes");
  for (index_t i = 0; i < src.rows(); ++i) {
    const S* s = src.row(i);
    D* d = dst.row(i);
    for (index_t j = 0; j < src.cols(); ++j) d[j] = static_cast<D>(s[j]);
  }
}

using MatrixD = Matrix<double>;
using ViewD = MatrixView<double>;
using ConstViewD = ConstMatrixView<double>;

using MatrixF = Matrix<float>;
using ViewF = MatrixView<float>;
using ConstViewF = ConstMatrixView<float>;

}  // namespace conflux
