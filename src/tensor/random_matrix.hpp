// Random test-matrix generators shared by tests, examples, and benches.
#pragma once

#include <cstdint>

#include "tensor/matrix.hpp"

namespace conflux {

/// Uniform entries in [-1, 1); well-conditioned w.h.p. for LU with pivoting.
MatrixD random_matrix(index_t rows, index_t cols, std::uint64_t seed);

/// Diagonally dominant matrix: random_matrix plus (cols) added to the
/// diagonal, so LU without pivoting is also stable (used by baselines that
/// skip pivoting and by Trace-vs-Real equivalence tests).
MatrixD random_dominant_matrix(index_t n, std::uint64_t seed);

/// Symmetric positive definite matrix: B*B^T + n*I with B = random_matrix.
MatrixD random_spd_matrix(index_t n, std::uint64_t seed);

}  // namespace conflux
