// The simulated distributed machine (Section 2.1 / Section 5 of the paper):
// P processors, each with a private fast memory of M words, no shared
// memory, explicit message passing with uniform remote-access cost.
//
// This substitutes for the paper's Piz Daint + MPI + Score-P stack (see
// DESIGN.md): every send/receive is charged to per-rank counters —
// byte-exact, where Score-P sampled — and wall time is modeled per
// superstep with an alpha-beta-gamma (latency-bandwidth-compute) model
// evaluated on the critical path:
//
//   T = sum over supersteps of max_rank(alpha * msgs + words / beta + flops / gamma).
//
// Algorithms run in bulk-synchronous style: they charge per-rank costs while
// (in Real mode) moving the actual matrix data, and call step_barrier() at
// phase boundaries.
#pragma once

#include <string>
#include <vector>

#include "support/check.hpp"

namespace conflux::xsim {

/// Execution mode shared by all schedules in src/factor and src/baselines:
/// Real moves matrix data (and costs), Trace charges costs only. A test
/// asserts the two produce identical counters.
enum class ExecMode { Real, Trace };

/// Event-recording hook for the discrete-event timeline engine (src/sched/,
/// DESIGN.md): when a sink is attached, every charge and barrier is mirrored
/// as a typed event in program order, so the aggregate counters can be
/// replayed at event granularity (bounded-overlap time model, Chrome-trace
/// export). Defined here so xsim stays independent of src/sched; the
/// callbacks mirror the charging API one-to-one.
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void on_flops(int rank, double flops) = 0;
  virtual void on_transfer(int src, int dst, double words) = 0;
  virtual void on_send(int rank, double words, long long messages) = 0;
  virtual void on_recv(int rank, double words, long long messages) = 0;
  virtual void on_chain(double rounds) = 0;
  virtual void on_barrier() = 0;
  /// Phase label applied to subsequent events (schedule step names).
  virtual void on_annotation(const char* label) = 0;
};

/// Machine shape and time-model constants. Defaults approximate one XC40
/// Piz Daint rank (half a dual-socket Xeon E5-2695v4 node, Aries NIC):
///   gamma ~ 0.6 Tflop/s per rank (18 cores x 2.1 GHz x 16 flops/cycle),
///   beta  ~ 1.25e9 words/s per rank (~10 GB/s of the Aries links),
///   alpha ~ 2 microseconds per message.
/// Only ratios matter for the reproduced figures (% of peak, speedups).
struct MachineSpec {
  int num_ranks = 1;
  double memory_words = 0.0;  ///< M: fast-memory words per rank
  double alpha_s = 2e-6;
  double beta_words_per_s = 1.25e9;
  double gamma_flops_per_s = 0.6e12;
};

/// Per-rank aggregate counters (the Score-P substitute).
struct RankCounters {
  double words_sent = 0.0;
  double words_received = 0.0;
  long long messages_sent = 0;
  long long messages_received = 0;
  double flops = 0.0;
  /// Paper's "communication volume per rank": max of sent/received traffic
  /// (symmetric schedules have them equal; counting one direction avoids
  /// double counting a transfer).
  double comm_volume() const { return words_sent > words_received ? words_sent : words_received; }
};

class Machine {
 public:
  Machine(MachineSpec spec, ExecMode mode);

  int ranks() const { return spec_.num_ranks; }
  double memory() const { return spec_.memory_words; }
  ExecMode mode() const { return mode_; }
  bool real() const { return mode_ == ExecMode::Real; }
  const MachineSpec& spec() const { return spec_; }

  // ----------------------------------------------------------- charging ----
  void charge_flops(int rank, double flops);
  /// Charge one transfer: `words` leave src, arrive at dst, one message each.
  void charge_transfer(int src, int dst, double words);
  /// Aggregate one-sided charges for all-to-all-like redistribution steps
  /// where enumerating every (src, dst) pair would cost O(P^2): the caller
  /// computes each rank's exact egress/ingress words and an approximate peer
  /// count for the latency term. Global sent and received totals must still
  /// balance across the step (callers charge both directions).
  void charge_send(int rank, double words, long long messages);
  void charge_recv(int rank, double words, long long messages);
  /// Record `rounds` sequential communication rounds on the schedule's
  /// dependency chain (e.g. log2(P) for a broadcast, one per pivot column
  /// for partial pivoting). The overlap time model charges alpha per round:
  /// this is what makes partial pivoting's O(N)-deep chain expensive and
  /// tournament pivoting's O(N/v) chain cheap (Section 7.3's motivation).
  /// A single-rank machine has no messages — like every other communication
  /// charge, chains are free there (this keeps modeled_time_overlap() a
  /// lower bound of elapsed_time() at P = 1 too).
  void charge_chain(double rounds) {
    if (spec_.num_ranks == 1) return;
    chain_rounds_ += rounds;
    if (sink_ != nullptr) sink_->on_chain(rounds);
  }
  double chain_rounds() const { return chain_rounds_; }

  // ----------------------------------------------------- event recording ----
  /// Attach (or detach with nullptr) an event sink; every subsequent charge
  /// and barrier is mirrored to it. The sink must outlive its attachment.
  void set_event_sink(EventSink* sink) { sink_ = sink; }
  EventSink* event_sink() const { return sink_; }
  /// Name the current schedule phase (no-op without a sink). Labels flow
  /// into recorded events and the Chrome-trace export.
  void annotate(const char* label) {
    if (sink_ != nullptr) sink_->on_annotation(label);
  }

  // ---------------------------------------------------- memory tracking ----
  /// Register `words` of resident data on a rank (tiles, panels, buffers).
  void alloc(int rank, double words);
  void release(int rank, double words);
  double memory_in_use(int rank) const;
  double memory_highwater(int rank) const;
  /// Largest high-water mark across ranks (tests compare this against M).
  double memory_highwater_max() const;

  // ----------------------------------------------------------- stepping ----
  /// Close the current superstep: fold its critical-path time into
  /// elapsed_time() and reset the per-step counters.
  void step_barrier();
  /// Strict BSP critical path: supersteps are serialized, each costing the
  /// slowest rank's alpha-beta-gamma time. Pessimistic for schedules with
  /// rotating per-step hotspots (no cross-step pipelining).
  double elapsed_time() const { return elapsed_; }
  /// Overlap (bulk-asynchronous) model: assumes steps pipeline perfectly,
  /// so each rank's time is its own aggregate alpha-beta-gamma cost and the
  /// run takes the slowest rank. This matches the paper's own volume-driven
  /// cost models and its emphasis on asynchronous overlap (Section 8); the
  /// performance figures (9, 10, 1, 11) use this model.
  double modeled_time_overlap() const;
  long long num_steps() const { return steps_; }

  // ------------------------------------------------------------ results ----
  const RankCounters& counters(int rank) const;
  /// Max over ranks of per-rank communication volume.
  double max_comm_volume() const;
  /// Average received words per rank — the paper's "communication volume per
  /// node" (Score-P aggregate divided by the node count).
  double avg_comm_volume() const {
    return running_words_received_ / static_cast<double>(spec_.num_ranks);
  }
  /// Running machine-wide totals (O(1); used by step-cost recorders).
  double total_words_received() const;
  double total_flops() const;

 private:
  struct StepCounters {
    double words_sent = 0.0;
    double words_received = 0.0;
    long long messages = 0;
    double flops = 0.0;
  };

  void validate_rank(int rank) const {
    expects(rank >= 0 && rank < spec_.num_ranks, "rank out of range");
  }

  MachineSpec spec_;
  ExecMode mode_;
  std::vector<RankCounters> totals_;
  std::vector<StepCounters> step_;
  std::vector<double> mem_in_use_;
  std::vector<double> mem_highwater_;
  // Ranks touched in the current superstep: keeps step_barrier O(active)
  // instead of O(P) so Trace runs with P = 2^18 stay fast.
  std::vector<int> touched_;
  std::vector<bool> touched_flag_;
  EventSink* sink_ = nullptr;
  double elapsed_ = 0.0;
  long long steps_ = 0;
  double chain_rounds_ = 0.0;
  double running_words_received_ = 0.0;
  double running_flops_ = 0.0;

  void touch(int rank);
};

}  // namespace conflux::xsim
