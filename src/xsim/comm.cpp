#include "xsim/comm.hpp"

#include <bit>

namespace conflux::xsim::comm {

namespace {

bool is_pow2(std::size_t n) { return std::has_single_bit(n); }

// Virtual rank helper: position relative to the root, wrapping around the
// participant list (the standard binomial-tree rotation).
std::size_t vrank(std::size_t idx, std::size_t root, std::size_t n) {
  return (idx + n - root) % n;
}
std::size_t unvrank(std::size_t v, std::size_t root, std::size_t n) {
  return (v + root) % n;
}

// Recursive half-split scatter over virtual ranks [lo, hi), root at lo.
// Visit(a, b, subtree_size): edge sending `subtree_size` chunks from virtual
// rank a to virtual rank b.
template <typename Visit>
void scatter_edges(std::size_t lo, std::size_t hi, Visit&& visit) {
  while (hi - lo > 1) {
    const std::size_t mid = lo + (hi - lo + 1) / 2;
    visit(lo, mid, hi - mid);
    // Recurse into the far half; continue iteratively on the near half.
    scatter_edges(mid, hi, visit);
    hi = mid;
  }
}

}  // namespace

void p2p(Machine& m, int src, int dst, double words) {
  if (src == dst) return;  // local, free
  m.charge_transfer(src, dst, words);
}

void broadcast(Machine& m, std::span<const int> ranks, std::size_t root_idx,
               double words) {
  const std::size_t n = ranks.size();
  expects(n >= 1 && root_idx < n, "bad broadcast shape");
  // Binomial tree: in round `mask`, ranks with vrank < mask send to
  // vrank + mask.
  for (std::size_t mask = 1; mask < n; mask <<= 1) {
    for (std::size_t v = 0; v < mask; ++v) {
      const std::size_t peer = v + mask;
      if (peer >= n) continue;
      p2p(m, ranks[unvrank(v, root_idx, n)], ranks[unvrank(peer, root_idx, n)], words);
    }
  }
}

void reduce(Machine& m, std::span<const int> ranks, std::size_t root_idx,
            double words, bool charge_combine_flops) {
  const std::size_t n = ranks.size();
  expects(n >= 1 && root_idx < n, "bad reduce shape");
  // Mirror of the binomial broadcast, edges reversed; the receiver combines.
  std::size_t top_mask = 1;
  while (top_mask < n) top_mask <<= 1;
  for (std::size_t mask = top_mask >> 1; mask >= 1; mask >>= 1) {
    for (std::size_t v = 0; v < mask; ++v) {
      const std::size_t peer = v + mask;
      if (peer >= n) continue;
      const int receiver = ranks[unvrank(v, root_idx, n)];
      p2p(m, ranks[unvrank(peer, root_idx, n)], receiver, words);
      if (charge_combine_flops) m.charge_flops(receiver, words);
    }
    if (mask == 1) break;
  }
}

void allreduce(Machine& m, std::span<const int> ranks, double words,
               bool charge_combine_flops) {
  const std::size_t n = ranks.size();
  expects(n >= 1, "allreduce needs participants");
  if (n == 1) return;
  // Standard MPI recursive doubling with a fold for non-powers of two:
  // the first 2r ranks pair up (odd -> even), the remaining core of
  // m = 2^k ranks runs k exchange rounds, then results flow back.
  std::size_t core = std::size_t{1} << (std::bit_width(n) - 1);
  const std::size_t r = n - core;
  const auto charge_pair = [&](std::size_t a, std::size_t b) {
    p2p(m, ranks[a], ranks[b], words);
    p2p(m, ranks[b], ranks[a], words);
    if (charge_combine_flops) {
      m.charge_flops(ranks[a], words);
      m.charge_flops(ranks[b], words);
    }
  };
  // Fold: ranks 2i+1 (i < r) send into 2i.
  for (std::size_t i = 0; i < r; ++i) {
    p2p(m, ranks[2 * i + 1], ranks[2 * i], words);
    if (charge_combine_flops) m.charge_flops(ranks[2 * i], words);
  }
  // Core participants: evens of the folded prefix, then the tail.
  std::vector<std::size_t> core_idx;
  core_idx.reserve(core);
  for (std::size_t i = 0; i < r; ++i) core_idx.push_back(2 * i);
  for (std::size_t i = 2 * r; i < n; ++i) core_idx.push_back(i);
  for (std::size_t mask = 1; mask < core; mask <<= 1) {
    for (std::size_t v = 0; v < core; ++v) {
      const std::size_t peer = v ^ mask;
      if (peer > v) charge_pair(core_idx[v], core_idx[peer]);
    }
  }
  // Unfold: evens push the final value back to their odd partner.
  for (std::size_t i = 0; i < r; ++i) {
    p2p(m, ranks[2 * i], ranks[2 * i + 1], words);
  }
}

void butterfly(Machine& m, std::span<const int> ranks, double words_per_round) {
  const std::size_t n = ranks.size();
  expects(n >= 1, "butterfly needs participants");
  for (std::size_t mask = 1; mask < n; mask <<= 1) {
    for (std::size_t v = 0; v < n; ++v) {
      const std::size_t peer = v ^ mask;
      if (peer > v && peer < n) {
        p2p(m, ranks[v], ranks[peer], words_per_round);
        p2p(m, ranks[peer], ranks[v], words_per_round);
      }
    }
  }
}

void scatter(Machine& m, std::span<const int> ranks, std::size_t root_idx,
             double words_per_rank) {
  const std::size_t n = ranks.size();
  expects(n >= 1 && root_idx < n, "bad scatter shape");
  scatter_edges(0, n, [&](std::size_t a, std::size_t b, std::size_t subtree) {
    p2p(m, ranks[unvrank(a, root_idx, n)], ranks[unvrank(b, root_idx, n)],
        words_per_rank * static_cast<double>(subtree));
  });
}

void gather(Machine& m, std::span<const int> ranks, std::size_t root_idx,
            double words_per_rank) {
  const std::size_t n = ranks.size();
  expects(n >= 1 && root_idx < n, "bad gather shape");
  // Same tree as scatter with every edge reversed.
  scatter_edges(0, n, [&](std::size_t a, std::size_t b, std::size_t subtree) {
    p2p(m, ranks[unvrank(b, root_idx, n)], ranks[unvrank(a, root_idx, n)],
        words_per_rank * static_cast<double>(subtree));
  });
}

void allgather(Machine& m, std::span<const int> ranks, double words_per_rank) {
  const std::size_t n = ranks.size();
  expects(n >= 1, "allgather needs participants");
  if (n == 1) return;
  if (is_pow2(n)) {
    // Recursive doubling: round r exchanges blocks of 2^r * w.
    for (std::size_t mask = 1; mask < n; mask <<= 1) {
      const double block = words_per_rank * static_cast<double>(mask);
      for (std::size_t v = 0; v < n; ++v) {
        const std::size_t peer = v ^ mask;
        if (peer > v) {
          p2p(m, ranks[v], ranks[peer], block);
          p2p(m, ranks[peer], ranks[v], block);
        }
      }
    }
    return;
  }
  // Ring: n-1 rounds, each rank forwarding one block per round.
  for (std::size_t round = 0; round + 1 < n; ++round) {
    for (std::size_t v = 0; v < n; ++v) {
      p2p(m, ranks[v], ranks[(v + 1) % n], words_per_rank);
    }
  }
}

void reduce_scatter(Machine& m, std::span<const int> ranks, double words_per_rank,
                    bool charge_combine_flops) {
  const std::size_t n = ranks.size();
  expects(n >= 1, "reduce_scatter needs participants");
  if (n == 1) return;
  if (is_pow2(n)) {
    // Recursive halving: round r exchanges n/2^r * w words.
    for (std::size_t half = n / 2; half >= 1; half /= 2) {
      const double block = words_per_rank * static_cast<double>(half);
      for (std::size_t v = 0; v < n; ++v) {
        const std::size_t peer = v ^ half;
        if (peer > v) {
          p2p(m, ranks[v], ranks[peer], block);
          p2p(m, ranks[peer], ranks[v], block);
          if (charge_combine_flops) {
            m.charge_flops(ranks[v], block);
            m.charge_flops(ranks[peer], block);
          }
        }
      }
      if (half == 1) break;
    }
    return;
  }
  // General n: binomial reduce of the full payload, then scatter the chunks.
  reduce(m, ranks, 0, words_per_rank * static_cast<double>(n), charge_combine_flops);
  scatter(m, ranks, 0, words_per_rank);
}

}  // namespace conflux::xsim::comm
