// Simulated collectives with exact per-rank cost accounting.
//
// Each collective enumerates the point-to-point edges of the textbook MPI
// algorithm (binomial trees, recursive doubling/halving, ring, butterfly)
// and charges every edge through Machine::charge_transfer, so the per-rank
// counters reflect what an MPI implementation of the schedule would move.
//
// The *_data variants additionally move real matrix data when the machine is
// in Real mode; the payload size is always passed explicitly so Trace-mode
// executions charge identical costs without touching any buffers (a test
// asserts Trace == Real counter equality for the factorizations).
#pragma once

#include <span>
#include <vector>

#include "support/check.hpp"
#include "xsim/machine.hpp"

namespace conflux::xsim::comm {

/// One point-to-point transfer of `words`.
void p2p(Machine& m, int src, int dst, double words);

/// Binomial-tree broadcast from ranks[root_idx] to all of `ranks`.
void broadcast(Machine& m, std::span<const int> ranks, std::size_t root_idx,
               double words);

/// Binomial-tree reduction onto ranks[root_idx]; charges one flop per
/// combined word at each merge when charge_combine_flops is set.
void reduce(Machine& m, std::span<const int> ranks, std::size_t root_idx,
            double words, bool charge_combine_flops = true);

/// Recursive-doubling allreduce (with the standard non-power-of-two fold).
void allreduce(Machine& m, std::span<const int> ranks, double words,
               bool charge_combine_flops = true);

/// Butterfly (hypercube) exchange: ceil(log2 n) rounds, each rank exchanging
/// `words_per_round` with its partner — the tournament-pivoting pattern
/// (Section 7.3, [55]). Ranks without a partner in a round sit out.
void butterfly(Machine& m, std::span<const int> ranks, double words_per_round);

/// Binomial scatter of `words_per_rank` chunks from ranks[root_idx].
void scatter(Machine& m, std::span<const int> ranks, std::size_t root_idx,
             double words_per_rank);

/// Binomial gather of `words_per_rank` chunks onto ranks[root_idx].
void gather(Machine& m, std::span<const int> ranks, std::size_t root_idx,
            double words_per_rank);

/// Allgather of `words_per_rank` per rank: recursive doubling when the
/// participant count is a power of two, ring otherwise.
void allgather(Machine& m, std::span<const int> ranks, double words_per_rank);

/// Reduce-scatter leaving `words_per_rank` on each rank: recursive halving
/// when power-of-two, reduce+scatter composition otherwise.
void reduce_scatter(Machine& m, std::span<const int> ranks, double words_per_rank,
                    bool charge_combine_flops = true);

// ---------------------------------------------------------------------------
// Data-carrying variants. `get(rank)` must return a std::span<double> of
// exactly `words` elements; it is only invoked in Real mode.
// ---------------------------------------------------------------------------

template <typename GetBuf>
void broadcast_data(Machine& m, std::span<const int> ranks, std::size_t root_idx,
                    double words, GetBuf&& get) {
  broadcast(m, ranks, root_idx, words);
  if (!m.real()) return;
  const std::span<double> src = get(ranks[root_idx]);
  expects(static_cast<double>(src.size()) == words, "broadcast payload size mismatch");
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    if (i == root_idx) continue;
    const std::span<double> dst = get(ranks[i]);
    expects(dst.size() == src.size(), "broadcast buffer size mismatch");
    for (std::size_t k = 0; k < src.size(); ++k) dst[k] = src[k];
  }
}

template <typename GetBuf>
void reduce_sum_data(Machine& m, std::span<const int> ranks, std::size_t root_idx,
                     double words, GetBuf&& get) {
  reduce(m, ranks, root_idx, words);
  if (!m.real()) return;
  const std::span<double> dst = get(ranks[root_idx]);
  expects(static_cast<double>(dst.size()) == words, "reduce payload size mismatch");
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    if (i == root_idx) continue;
    const std::span<double> src = get(ranks[i]);
    expects(src.size() == dst.size(), "reduce buffer size mismatch");
    for (std::size_t k = 0; k < dst.size(); ++k) dst[k] += src[k];
  }
}

template <typename GetBuf>
void allreduce_sum_data(Machine& m, std::span<const int> ranks, double words,
                        GetBuf&& get) {
  allreduce(m, ranks, words);
  if (!m.real()) return;
  expects(!ranks.empty(), "allreduce needs participants");
  const std::span<double> first = get(ranks[0]);
  expects(static_cast<double>(first.size()) == words, "allreduce payload size mismatch");
  for (std::size_t i = 1; i < ranks.size(); ++i) {
    const std::span<double> src = get(ranks[i]);
    for (std::size_t k = 0; k < first.size(); ++k) first[k] += src[k];
  }
  for (std::size_t i = 1; i < ranks.size(); ++i) {
    const std::span<double> dst = get(ranks[i]);
    for (std::size_t k = 0; k < first.size(); ++k) dst[k] = first[k];
  }
}

/// p2p with a data copy in Real mode.
template <typename GetSrc, typename GetDst>
void p2p_data(Machine& m, int src, int dst, double words, GetSrc&& get_src,
              GetDst&& get_dst) {
  p2p(m, src, dst, words);
  if (!m.real()) return;
  const std::span<const double> s = get_src();
  const std::span<double> d = get_dst();
  expects(static_cast<double>(s.size()) == words && d.size() == s.size(),
          "p2p payload size mismatch");
  for (std::size_t k = 0; k < s.size(); ++k) d[k] = s[k];
}

}  // namespace conflux::xsim::comm
