#include "xsim/machine.hpp"

#include <algorithm>

namespace conflux::xsim {

Machine::Machine(MachineSpec spec, ExecMode mode) : spec_(spec), mode_(mode) {
  expects(spec.num_ranks >= 1, "need at least one rank");
  expects(spec.memory_words >= 0.0, "memory must be non-negative");
  const auto n = static_cast<std::size_t>(spec.num_ranks);
  totals_.resize(n);
  step_.resize(n);
  mem_in_use_.assign(n, 0.0);
  mem_highwater_.assign(n, 0.0);
  touched_flag_.assign(n, false);
}

void Machine::touch(int rank) {
  if (!touched_flag_[static_cast<std::size_t>(rank)]) {
    touched_flag_[static_cast<std::size_t>(rank)] = true;
    touched_.push_back(rank);
  }
}

void Machine::charge_flops(int rank, double flops) {
  validate_rank(rank);
  expects(flops >= 0.0, "flops must be non-negative");
  totals_[static_cast<std::size_t>(rank)].flops += flops;
  step_[static_cast<std::size_t>(rank)].flops += flops;
  running_flops_ += flops;
  touch(rank);
  if (sink_ != nullptr) sink_->on_flops(rank, flops);
}

void Machine::charge_transfer(int src, int dst, double words) {
  validate_rank(src);
  validate_rank(dst);
  expects(words >= 0.0, "words must be non-negative");
  expects(src != dst, "self transfers are local copies, not communication");
  auto& s_tot = totals_[static_cast<std::size_t>(src)];
  auto& d_tot = totals_[static_cast<std::size_t>(dst)];
  s_tot.words_sent += words;
  s_tot.messages_sent += 1;
  d_tot.words_received += words;
  d_tot.messages_received += 1;
  running_words_received_ += words;
  auto& s_step = step_[static_cast<std::size_t>(src)];
  auto& d_step = step_[static_cast<std::size_t>(dst)];
  s_step.words_sent += words;
  s_step.messages += 1;
  d_step.words_received += words;
  d_step.messages += 1;
  touch(src);
  touch(dst);
  if (sink_ != nullptr) sink_->on_transfer(src, dst, words);
}

void Machine::charge_send(int rank, double words, long long messages) {
  validate_rank(rank);
  expects(words >= 0.0 && messages >= 0, "bad aggregate send");
  auto& tot = totals_[static_cast<std::size_t>(rank)];
  tot.words_sent += words;
  tot.messages_sent += messages;
  auto& st = step_[static_cast<std::size_t>(rank)];
  st.words_sent += words;
  st.messages += messages;
  touch(rank);
  if (sink_ != nullptr) sink_->on_send(rank, words, messages);
}

void Machine::charge_recv(int rank, double words, long long messages) {
  validate_rank(rank);
  expects(words >= 0.0 && messages >= 0, "bad aggregate recv");
  auto& tot = totals_[static_cast<std::size_t>(rank)];
  tot.words_received += words;
  tot.messages_received += messages;
  running_words_received_ += words;
  auto& st = step_[static_cast<std::size_t>(rank)];
  st.words_received += words;
  st.messages += messages;
  touch(rank);
  if (sink_ != nullptr) sink_->on_recv(rank, words, messages);
}

void Machine::alloc(int rank, double words) {
  validate_rank(rank);
  auto& used = mem_in_use_[static_cast<std::size_t>(rank)];
  used += words;
  auto& hw = mem_highwater_[static_cast<std::size_t>(rank)];
  hw = std::max(hw, used);
}

void Machine::release(int rank, double words) {
  validate_rank(rank);
  auto& used = mem_in_use_[static_cast<std::size_t>(rank)];
  used -= words;
  check(used >= -1e-9, "released more memory than allocated");
}

double Machine::memory_in_use(int rank) const {
  validate_rank(rank);
  return mem_in_use_[static_cast<std::size_t>(rank)];
}

double Machine::memory_highwater(int rank) const {
  validate_rank(rank);
  return mem_highwater_[static_cast<std::size_t>(rank)];
}

double Machine::memory_highwater_max() const {
  double best = 0.0;
  for (double hw : mem_highwater_) best = std::max(best, hw);
  return best;
}

void Machine::step_barrier() {
  double step_time = 0.0;
  for (int rank : touched_) {
    auto& c = step_[static_cast<std::size_t>(rank)];
    const double comm_words = std::max(c.words_sent, c.words_received);
    const double t = spec_.alpha_s * static_cast<double>(c.messages) +
                     comm_words / spec_.beta_words_per_s +
                     c.flops / spec_.gamma_flops_per_s;
    step_time = std::max(step_time, t);
    c = StepCounters{};
    touched_flag_[static_cast<std::size_t>(rank)] = false;
  }
  touched_.clear();
  elapsed_ += step_time;
  ++steps_;
  if (sink_ != nullptr) sink_->on_barrier();
}

double Machine::modeled_time_overlap() const {
  double worst = 0.0;
  for (const auto& c : totals_) {
    const double t =
        c.comm_volume() / spec_.beta_words_per_s + c.flops / spec_.gamma_flops_per_s;
    worst = std::max(worst, t);
  }
  return worst + spec_.alpha_s * chain_rounds_;
}

const RankCounters& Machine::counters(int rank) const {
  validate_rank(rank);
  return totals_[static_cast<std::size_t>(rank)];
}

double Machine::max_comm_volume() const {
  double best = 0.0;
  for (const auto& c : totals_) best = std::max(best, c.comm_volume());
  return best;
}

double Machine::total_words_received() const { return running_words_received_; }

double Machine::total_flops() const { return running_flops_; }

}  // namespace conflux::xsim
