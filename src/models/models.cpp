#include "models/models.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "support/check.hpp"

namespace conflux::models {

double mkl_lu_volume(double n, const grid::Grid2D& g) {
  const double pr = g.pr;
  const double pc = g.pc;
  const double p = pr * pc;
  // Panel broadcasts (leading) + expected cross-rank swap traffic.
  return n * n / 2.0 * (1.0 / pr + 1.0 / pc) +
         2.0 * n * n * (1.0 - 1.0 / pr) / p;
}

double slate_lu_volume(double n, const grid::Grid2D& g) {
  const double pr = g.pr;
  const double pc = g.pc;
  return n * n / 2.0 * (1.0 / pr + 1.0 / pc);
}

double cholesky_2d_volume(double n, const grid::Grid2D& g) {
  const double pr = g.pr;
  const double pc = g.pc;
  // One triangular panel per step instead of two full ones.
  return n * n / 2.0 * (1.0 / pr + 1.0 / pc) / 2.0 * 2.0;  // L21 + L21^T bcasts
}

double candmc_lu_volume(double n, double p, double memory) {
  return 5.0 * n * n * n / (p * std::sqrt(memory));
}

double capital_cholesky_volume(double n, double p, double memory) {
  return 45.0 * n * n * n / (8.0 * p * std::sqrt(memory));
}

double conflux_volume(double n, double p, double memory) {
  return n * n * n / (p * std::sqrt(memory));
}

double lu_lower_bound(double n, double p, double memory) {
  return (2.0 * n * n * n - 6.0 * n * n + 4.0 * n) / (3.0 * p * std::sqrt(memory)) +
         n * (n - 1.0) / (2.0 * p);
}

double cholesky_lower_bound(double n, double p, double memory) {
  return (n * n * n - 3.0 * n * n + 2.0 * n) / (3.0 * p * std::sqrt(memory)) +
         n * (n - 1.0) / (2.0 * p) + n / p;
}

double lu_lower_bound_memory_independent(double n, double p) {
  return 2.0 * n * n / (3.0 * std::pow(p, 2.0 / 3.0)) + n * (n - 1.0) / (2.0 * p);
}

double cholesky_lower_bound_memory_independent(double n, double p) {
  return n * n / (3.0 * std::pow(p, 2.0 / 3.0)) + n * (n - 1.0) / (2.0 * p) + n / p;
}

double lu_lower_bound_clamped(double n, double p, double memory) {
  const double usable = std::min(memory, n * n / std::pow(p, 2.0 / 3.0));
  return lu_lower_bound(n, p, usable);
}

namespace {

// Butterfly transfer count among k participants: pairs over all rounds, two
// transfers per pair (mirrors xsim::comm::butterfly).
long long butterfly_transfers(int k) {
  long long pairs = 0;
  for (int mask = 1; mask < k; mask <<= 1) {
    for (int x = 0; x < k; ++x) {
      const int peer = x ^ mask;
      if (peer > x && peer < k) ++pairs;
    }
  }
  return 2 * pairs;
}

bool is_pow2(int x) { return std::has_single_bit(static_cast<unsigned>(x)); }

}  // namespace

double conflux_lu_volume_exact(index_t n, const grid::Grid3D& g, index_t v) {
  expects(v >= 1 && v % g.pz() == 0, "block size must be a multiple of pz");
  const index_t npad = (n + v - 1) / v * v;
  const index_t steps = npad / v;
  const double px = g.px();
  const double py = g.py();
  const double pz = g.pz();
  const double p = g.ranks();
  const double vv = static_cast<double>(v);
  const double bfly =
      static_cast<double>(butterfly_transfers(g.px())) * vv * (vv + 1.0) +
      ((!is_pow2(g.px()) && g.px() > 1)
           ? (px - 1.0) * vv * (vv + 1.0)
           : 0.0);
  double total = 0.0;
  for (index_t t = 0; t < steps; ++t) {
    const double n_t = static_cast<double>(npad - t * v);
    const double a = n_t - vv;                               // A10 rows
    const double c = static_cast<double>(steps - t - 1) * vv;  // trailing cols
    if (g.pz() > 1) total += (pz - 1.0) * n_t * vv;          // step 1
    total += bfly;                                           // step 2
    total += (p - 1.0) * (vv * vv + vv);                     // step 3
    total += a * vv + c * vv;                                // steps 4 + 6
    if (g.pz() > 1) total += (pz - 1.0) * vv * c;            // step 5
    total += py * a * vv + px * c * vv;                      // steps 8 + 10
  }
  return total / p;
}

double confchox_volume_exact(index_t n, const grid::Grid3D& g, index_t v) {
  expects(v >= 1 && v % g.pz() == 0, "block size must be a multiple of pz");
  const index_t npad = (n + v - 1) / v * v;
  const index_t steps = npad / v;
  const double px = g.px();
  const double py = g.py();
  const double pz = g.pz();
  const double p = g.ranks();
  const double vv = static_cast<double>(v);
  double total = 0.0;
  for (index_t t = 0; t < steps; ++t) {
    const double r = static_cast<double>(npad - t * v);        // panel rows
    const double b = static_cast<double>(npad - (t + 1) * v);  // below-diag rows
    if (g.pz() > 1) total += (pz - 1.0) * r * vv;              // step 1
    total += (p - 1.0) * vv * vv;                              // A00 bcast
    total += b * vv;                                           // 1D scatter
    total += (px + py) * b * vv;                               // 2.5D distribute
  }
  return total / p;
}

grid::Grid3D best_conflux_grid(index_t n, int p, double memory_words) {
  expects(n >= 1 && p >= 1 && memory_words > 0.0, "bad grid-selection inputs");
  const double nn = static_cast<double>(n);
  double best_volume = std::numeric_limits<double>::infinity();
  grid::Grid3D best(1, 1, std::max(1, p));  // overwritten below
  bool found = false;
  for (int pz = 1; pz <= p; ++pz) {
    if (p % pz != 0) continue;
    // Replicated matrix must fit: c * N^2 / P <= M.
    if (static_cast<double>(pz) * nn * nn / static_cast<double>(p) > memory_words) {
      break;  // pz only grows from here
    }
    const int plane = p / pz;
    int px = 1;
    for (int d = 1; d * d <= plane; ++d) {
      if (plane % d == 0) px = d;
    }
    const int py = plane / px;
    const grid::Grid3D g(px, py, pz);
    index_t v = std::max<index_t>(2 * pz, 64);
    v = (v / pz) * pz;
    v = std::min<index_t>(v, std::max<index_t>(pz, (n / 4 / pz) * pz));
    if (v < pz) v = pz;
    const double volume = conflux_lu_volume_exact(n, g, v);
    if (volume < best_volume) {
      best_volume = volume;
      best = g;
      found = true;
    }
  }
  expects(found, "no grid fits: one matrix copy exceeds aggregate memory");
  return best;
}

double peak_fraction(double useful_flops, const xsim::MachineSpec& spec,
                     double elapsed_s) {
  expects(elapsed_s > 0.0, "elapsed time must be positive");
  const double peak = static_cast<double>(spec.num_ranks) * spec.gamma_flops_per_s;
  return useful_flops / (peak * elapsed_s);
}

double paper_memory_words(double n, double p, double node_memory_words) {
  // Enough memory for maximum replication (c = P^{1/3}), capped by the
  // physical node budget (Piz Daint XC40: 64 GiB per node, two ranks/node ->
  // ~4e9 words; the default keeps some headroom for buffers).
  const double max_replicated = std::cbrt(p) * n * n / p;
  return std::min(max_replicated, node_memory_words);
}

}  // namespace conflux::models
