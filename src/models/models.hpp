// Analytic communication-cost models (Table 2 of the paper) and the
// performance/peak helpers used by the figure benches.
//
// Two families:
//  * paper-form models — the closed forms printed in Table 2 (leading term
//    plus the dominant lower-order term), used for the model lines in
//    Figures 8a-c and the exascale predictions;
//  * exact models — per-rank average volumes that mirror the implemented
//    schedules charge-for-charge; the Table 2 validation ("error within
//    ±3%") compares measured traces against the paper-form models, while the
//    exact models must match to ~double precision.
#pragma once

#include "grid/grid.hpp"
#include "tensor/matrix.hpp"
#include "xsim/machine.hpp"

namespace conflux::models {

// ------------------------------------------------- paper-form (Table 2) ----

/// MKL / ScaLAPACK: N^2/sqrt(P) + O(N^2/P); the second term is the explicit
/// row-swap traffic. Parameterized by the actual 2D grid.
double mkl_lu_volume(double n, const grid::Grid2D& g);

/// SLATE: same 2D decomposition without cross-rank swap traffic.
double slate_lu_volume(double n, const grid::Grid2D& g);

/// 2D Cholesky (both MKL and SLATE shapes): half the panel traffic of LU.
double cholesky_2d_volume(double n, const grid::Grid2D& g);

/// CANDMC [61]: 5 N^3 / (P sqrt(M)).
double candmc_lu_volume(double n, double p, double memory);

/// CAPITAL [33]: 45 N^3 / (8 P sqrt(M)).
double capital_cholesky_volume(double n, double p, double memory);

/// COnfLUX / COnfCHOX (Lemma 10): N^3 / (P sqrt(M)).
double conflux_volume(double n, double p, double memory);

/// Section 6 lower bounds (re-exported closed forms).
double lu_lower_bound(double n, double p, double memory);
double cholesky_lower_bound(double n, double p, double memory);

/// Memory-independent regime (Section 6, "Memory size"): for
/// M > N^2/P^{2/3} the usable memory saturates and the bounds become
/// 2N^2/(3P^{2/3}) for LU and N^2/(3P^{2/3}) for Cholesky — obtained by
/// substituting the usable-memory cap into the memory-dependent forms.
double lu_lower_bound_memory_independent(double n, double p);
double cholesky_lower_bound_memory_independent(double n, double p);

/// The memory-dependent bound clamped at the memory-independent regime:
/// what the paper's analysis actually guarantees for arbitrary M.
double lu_lower_bound_clamped(double n, double p, double memory);

// ----------------------------------------------------------- exact models ---

/// Per-rank average received words of the implemented COnfLUX schedule —
/// matches Machine::total_words_received()/P of a trace run exactly.
double conflux_lu_volume_exact(index_t n, const grid::Grid3D& g, index_t v);

/// Same for COnfCHOX.
double confchox_volume_exact(index_t n, const grid::Grid3D& g, index_t v);

/// The paper's "optimized defaults" (Table 2): choose the [Px, Py, Pz] grid
/// minimizing the exact COnfLUX volume, subject to the replicated matrix
/// fitting in memory (c * N^2 / P <= M). This balances the leading
/// N^3/(P sqrt(M)) term against the O(M) layer-reduction terms, which at
/// maximum replication are the same order (Lemma 10's discussion).
grid::Grid3D best_conflux_grid(index_t n, int p, double memory_words);

// ------------------------------------------------------ time/peak helpers ---

/// Useful factorization flops (the numerator of "% of machine peak").
inline double lu_flops(double n) { return 2.0 * n * n * n / 3.0; }
inline double cholesky_flops(double n) { return n * n * n / 3.0; }

/// Fraction of aggregate machine peak achieved by a run that took
/// `elapsed_s` modeled seconds.
double peak_fraction(double useful_flops, const xsim::MachineSpec& spec,
                     double elapsed_s);

/// The memory per rank the paper's experiments grant: enough for the maximum
/// replication c = P^{1/3} unless that exceeds what the node holds.
double paper_memory_words(double n, double p, double node_memory_words = 8.0e9);

}  // namespace conflux::models
