// The general lower-bound method as a tool (Sections 2-5): define a DAAP
// statement for your own loop nest and get its parallel I/O lower bound —
// the "general method for deriving parallel I/O lower bounds of a broad
// range of linear algebra kernels" that is the paper's first contribution.
//
//   build/examples/lower_bound_explorer [--n=8192] [--p=64] [--m=1048576]
//
// Prints the per-statement analysis (chi, X0, rho) for the built-in kernels
// and for a custom 4-variable tensor-contraction statement defined inline,
// showing how to analyze a kernel the paper never mentions.
#include <cmath>
#include <iostream>

#include "daap/bounds.hpp"
#include "daap/statement.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

using namespace conflux;
using namespace conflux::daap;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const double n = cli.get_double("n", 8192.0);
  const double p = cli.get_double("p", 64.0);
  const double mem = cli.get_double("m", 1 << 20);
  cli.check_unused();

  TextTable table("Parallel I/O lower bounds (P = " + std::to_string((long long)p) +
                  ", M = " + std::to_string((long long)mem) + ")");
  table.set_header({"kernel", "Q_parallel_words", "leading_rho", "X0/M"});

  const auto analyze = [&](const char* name, const KernelInstance& kernel) {
    const ProgramBound b = derive_program_bound(kernel, p, mem);
    // Report the update statement (the last one): the paper's leading term.
    const auto& lead = b.per_statement.back();
    table.add_row({std::string(name), b.q_parallel, lead.rho, lead.x0 / mem});
  };
  analyze("matmul", matmul_kernel(n));
  analyze("LU", lu_kernel(n));
  analyze("Cholesky", cholesky_kernel(n));
  analyze("TRSM (nrhs=n)", trsm_kernel(n, n));
  analyze("SYRK (k=n)", syrk_kernel(n, n));

  // A custom kernel the paper never analyzed: the 4-index tensor contraction
  // C[i,j,l] += A[i,k,l] * B[k,j]. Defining it takes five lines; the engine
  // does the rest (KKT balance of |D_i||D_j||D_k||D_l| under the
  // three-access dominator constraint).
  StatementSpec tc;
  tc.name = "TC4";
  tc.num_vars = 4;  // i=0, j=1, k=2, l=3
  tc.inputs = {AccessSpec{"C", {0, 1, 3}}, AccessSpec{"A", {0, 2, 3}},
               AccessSpec{"B", {2, 1}}};
  tc.output = AccessSpec{"C", {0, 1, 3}};
  KernelInstance custom;
  custom.program.name = "tensor-contraction";
  custom.program.statements = {tc};
  custom.statement_vertices = {n * n * n};  // I=J=K=n, L=1 slice count folded in
  analyze("C[i,j,l]+=A[i,k,l]B[k,j]", custom);

  table.print(std::cout);
  std::cout << "\nReading the rows: rho is the computational intensity at the\n"
               "optimal X0 (paper: sqrt(M)/2 for all the gemm-shaped updates,\n"
               "X0 = 3M); Q = sum_i |V_i| / (P rho_i) after the Section 4 reuse\n"
               "composition. Try your own loop nest by editing the TC4 block.\n";
  return 0;
}
