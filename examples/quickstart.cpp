// Quickstart: factor a dense system with COnfLUX on a simulated 2.5D
// machine, solve it, and inspect what the run cost in communication.
//
//   build/examples/quickstart [--n=512] [--p=8]
//
// This is the 60-second tour of the public API:
//   1. pick a machine (P ranks, M words each) and a processor grid,
//   2. call conflux_lu (Real mode: actual numerics),
//   3. solve with the returned factors,
//   4. read the per-rank communication counters the paper's evaluation
//      is built on.
#include <iostream>

#include "blas/lapack.hpp"
#include "factor/conflux_lu.hpp"
#include "models/models.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "tensor/random_matrix.hpp"

using namespace conflux;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const index_t n = cli.get_int("n", 512);
  const int p = static_cast<int>(cli.get_int("p", 8));
  cli.check_unused();

  // 1. Machine and grid. best_conflux_grid picks the replication depth c
  //    (the "2.5D" third dimension) that minimizes communication for the
  //    memory we grant each rank.
  const double memory = 4.0 * static_cast<double>(n) * static_cast<double>(n) / p;
  const grid::Grid3D g = models::best_conflux_grid(n, p, memory);
  xsim::MachineSpec spec;
  spec.num_ranks = p;
  spec.memory_words = memory;
  xsim::Machine machine(spec, xsim::ExecMode::Real);
  std::cout << "Machine: P = " << p << ", grid " << g.px() << "x" << g.py() << "x"
            << g.pz() << " (replication c = " << g.pz() << ")\n";

  // 2. Factor A (tournament pivoting, row masking — Section 7 of the paper).
  const MatrixD a = random_matrix(n, n, /*seed=*/1);
  const factor::LuResult lu = factor::conflux_lu(machine, g, a.view());
  std::cout << "Factored " << n << "x" << n << " matrix; residual "
            << "||PA - LU|| / (||A|| N eps) = "
            << xblas::lu_residual(a.view(), lu.factors.view(), lu.perm) << "\n";

  // 3. Solve A x = b and check it.
  const MatrixD x_true = random_matrix(n, 1, 2);
  MatrixD b(n, 1, 0.0);
  xblas::gemm(xblas::Trans::None, xblas::Trans::None, 1.0, a.view(), x_true.view(),
              0.0, b.view());
  factor::conflux_lu_solve(lu, b.view());
  double err = 0.0;
  for (index_t i = 0; i < n; ++i) err = std::max(err, std::abs(b(i, 0) - x_true(i, 0)));
  std::cout << "Solved A x = b; max |x - x_true| = " << err << "\n\n";

  // 4. The communication story: per-rank volumes vs the paper's models.
  TextTable table("Per-rank communication");
  table.set_header({"rank", "words_sent", "words_received", "messages"});
  for (int r = 0; r < p; ++r) {
    const auto& c = machine.counters(r);
    table.add_row({static_cast<long long>(r), c.words_sent, c.words_received,
                   static_cast<long long>(c.messages_sent)});
  }
  table.print(std::cout);
  std::cout << "\navg volume/rank: " << machine.avg_comm_volume()
            << " words  (paper leading term N^3/(P sqrt(M)) = "
            << models::conflux_volume(static_cast<double>(n), p, memory)
            << ")\nmodeled time: " << machine.elapsed_time() << " s on "
            << machine.num_steps() << " supersteps\n";
  return 0;
}
