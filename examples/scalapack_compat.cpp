// ScaLAPACK interoperability (Section 8 / "out-of-the-box use"): a matrix
// that lives in a caller-chosen ScaLAPACK block-cyclic layout is factored
// through the pdgetrf-style wrapper, which transforms it to COnfLUX's
// internal 2.5D layout with the COSTA-substitute redistribution, factors,
// and hands the result back in the original layout.
//
//   build/examples/scalapack_compat [--n=384] [--p=8]
#include <iostream>

#include "blas/lapack.hpp"
#include "factor/scalapack_api.hpp"
#include "models/models.hpp"
#include "support/cli.hpp"
#include "tensor/random_matrix.hpp"

using namespace conflux;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const index_t n = cli.get_int("n", 384);
  const int p = static_cast<int>(cli.get_int("p", 8));
  cli.check_unused();

  // The caller's layout: ScaLAPACK-style 32x32 blocks on a 2x(P/2) grid,
  // described by the familiar nine-integer descriptor.
  layout::BlockCyclicLayout user_layout;
  user_layout.rows = user_layout.cols = n;
  user_layout.mb = user_layout.nb = 32;
  user_layout.pr = 2;
  user_layout.pc = p / 2;
  const layout::ScalapackDesc desc = make_desc(user_layout, 0);
  std::cout << "Caller layout: descriptor {m=" << desc.m << " n=" << desc.n
            << " mb=" << desc.mb << " nb=" << desc.nb << " lld=" << desc.lld
            << "} on a " << user_layout.pr << "x" << user_layout.pc << " grid\n";

  const MatrixD a = random_matrix(n, n, 11);
  const auto dist = layout::DistMatrix::from_global(a.view(), user_layout);

  const double memory = 4.0 * static_cast<double>(n) * static_cast<double>(n) / p;
  const grid::Grid3D g = models::best_conflux_grid(n, p, memory);
  xsim::MachineSpec spec;
  spec.num_ranks = p;
  spec.memory_words = memory;
  xsim::Machine machine(spec, xsim::ExecMode::Real);

  const factor::PdgetrfResult result = factor::pdgetrf(machine, g, dist);
  std::cout << "pdgetrf via COnfLUX: residual = "
            << xblas::lu_residual(a.view(), result.lu.factors.view(), result.lu.perm)
            << "\n";
  std::cout << "Factors returned in the caller's layout: local block of process "
               "(0,0) is "
            << result.factors.local(0, 0).rows() << "x"
            << result.factors.local(0, 0).cols() << "\n";
  std::cout << "Redistribution moved " << result.redistribution_words
            << " words total (O(N^2) = " << static_cast<double>(n) * n
            << " words; sub-leading vs the factorization's "
            << machine.total_words_received() << ")\n";
  return 0;
}
