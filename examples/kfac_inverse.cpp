// Machine-learning workload from the paper's motivation (Section 9): "in
// machine learning, matrix factorizations are used for inverting Kronecker
// factors, whose sizes are usually around N = 4,096" (K-FAC second-order
// optimization).
//
// The damped empirical covariance factor A = G G^T / m + lambda I (exactly
// the Kronecker-factor shape K-FAC maintains per layer) comes from the
// shared generator in tensor/example_problems.hpp — the same matrices the
// solve-service tests and the serve-throughput bench run — gets factored
// with COnfCHOX, and the inverse is applied to a gradient block, comparing
// communication against the 2D baseline a stock ScaLAPACK pdpotrf would use.
//
// This example ASSERTS its numerics: a factorization residual past
// kExampleResidualBound or a solve error past example_solve_bound exits
// nonzero, so the smoke-test run in CI is a real end-to-end check, not a
// demo that can rot silently.
//
//   build/examples/kfac_inverse [--n=1024] [--p=16]
#include <cmath>
#include <iostream>

#include "baselines/scalapack2d.hpp"
#include "blas/lapack.hpp"
#include "factor/confchox.hpp"
#include "models/models.hpp"
#include "support/cli.hpp"
#include "support/rng.hpp"
#include "tensor/example_problems.hpp"

using namespace conflux;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const index_t n = cli.get_int("n", 1024);
  const int p = static_cast<int>(cli.get_int("p", 16));
  cli.check_unused();

  const MatrixD a = kfac_kronecker_factor(n, /*seed=*/7);

  const double memory = 4.0 * static_cast<double>(n) * static_cast<double>(n) / p;
  const grid::Grid3D g = models::best_conflux_grid(n, p, memory);

  xsim::MachineSpec spec;
  spec.num_ranks = p;
  spec.memory_words = memory;
  xsim::Machine machine(spec, xsim::ExecMode::Real);
  const factor::CholResult chol = factor::confchox(machine, g, a.view());
  const double residual = xblas::cholesky_residual(a.view(), chol.factors.view());
  std::cout << "K-FAC factor " << n << "x" << n
            << " factored; residual = " << residual << " (bound "
            << kExampleResidualBound << ")\n";
  if (!(residual <= kExampleResidualBound)) {
    std::cerr << "FAIL: factorization residual exceeds the bound\n";
    return 1;
  }

  // Precondition a gradient: solve A^{-1} grad.
  Rng rng(99);
  MatrixD grad(n, 1);
  for (index_t i = 0; i < n; ++i) grad(i, 0) = rng.normal();
  const MatrixD grad0 = grad;
  factor::confchox_solve(chol, grad.view());
  MatrixD back(n, 1, 0.0);
  xblas::gemm(xblas::Trans::None, xblas::Trans::None, 1.0, a.view(), grad.view(),
              0.0, back.view());
  double err = 0.0;
  for (index_t i = 0; i < n; ++i) err = std::max(err, std::abs(back(i, 0) - grad0(i, 0)));
  const double bound = example_solve_bound(a.view());
  std::cout << "Natural-gradient solve: max |A x - g| = " << err << " (bound "
            << bound << ")\n";
  if (!(err <= bound)) {
    std::cerr << "FAIL: solve error exceeds the bound\n";
    return 1;
  }

  // Communication comparison against the 2D baseline at the same size.
  xsim::Machine machine2d(spec, xsim::ExecMode::Real);
  baselines::scalapack_cholesky(machine2d, grid::choose_grid_2d(p), a.view(), {});
  std::cout << "\nPer-rank volume / modeled time (N = " << n << ", P = " << p << "):\n"
            << "  COnfCHOX:      " << machine.avg_comm_volume() << " words, "
            << machine.modeled_time_overlap() << " s\n"
            << "  2D ScaLAPACK:  " << machine2d.avg_comm_volume() << " words, "
            << machine2d.modeled_time_overlap() << " s\n"
            << "(K-FAC sizes sit at the small-N end of the paper's Figure 11,\n"
            << " where its measured Cholesky speedups reach 1.8x; in this\n"
            << " simulator the 2.5D advantage appears once P grows — try\n"
            << " bench/fig11_cholesky_speedup_grid for the full heatmap)\n";
  return 0;
}
