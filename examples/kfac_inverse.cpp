// Machine-learning workload from the paper's motivation (Section 9): "in
// machine learning, matrix factorizations are used for inverting Kronecker
// factors, whose sizes are usually around N = 4,096" (K-FAC second-order
// optimization).
//
// We form a damped empirical covariance factor A = G G^T / m + lambda I
// (exactly the Kronecker-factor shape K-FAC maintains per layer), factor it
// with COnfCHOX, and apply the inverse to a gradient block — comparing the
// communication against the 2D baseline a stock ScaLAPACK pdpotrf would use.
//
//   build/examples/kfac_inverse [--n=1024] [--p=16]
#include <cmath>
#include <iostream>

#include "baselines/scalapack2d.hpp"
#include "blas/lapack.hpp"
#include "factor/confchox.hpp"
#include "models/models.hpp"
#include "support/cli.hpp"
#include "support/rng.hpp"
#include "tensor/random_matrix.hpp"

using namespace conflux;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const index_t n = cli.get_int("n", 1024);
  const int p = static_cast<int>(cli.get_int("p", 16));
  cli.check_unused();

  // Kronecker factor: damped activation covariance.
  const index_t batch = n / 2;
  const MatrixD gradients = random_matrix(n, batch, 7);
  MatrixD a(n, n, 0.0);
  xblas::syrk(xblas::UpLo::Lower, xblas::Trans::None, 1.0 / static_cast<double>(batch),
              gradients.view(), 0.0, a.view());
  for (index_t i = 0; i < n; ++i) {
    a(i, i) += 1e-2;  // Tikhonov damping, as K-FAC uses
    for (index_t j = i + 1; j < n; ++j) a(i, j) = a(j, i);
  }

  const double memory = 4.0 * static_cast<double>(n) * static_cast<double>(n) / p;
  const grid::Grid3D g = models::best_conflux_grid(n, p, memory);

  xsim::MachineSpec spec;
  spec.num_ranks = p;
  spec.memory_words = memory;
  xsim::Machine machine(spec, xsim::ExecMode::Real);
  const factor::CholResult chol = factor::confchox(machine, g, a.view());
  std::cout << "K-FAC factor " << n << "x" << n << " factored; residual = "
            << xblas::cholesky_residual(a.view(), chol.factors.view()) << "\n";

  // Precondition a gradient: solve A^{-1} grad.
  Rng rng(99);
  MatrixD grad(n, 1);
  for (index_t i = 0; i < n; ++i) grad(i, 0) = rng.normal();
  const MatrixD grad0 = grad;
  factor::confchox_solve(chol, grad.view());
  MatrixD back(n, 1, 0.0);
  xblas::gemm(xblas::Trans::None, xblas::Trans::None, 1.0, a.view(), grad.view(),
              0.0, back.view());
  double err = 0.0;
  for (index_t i = 0; i < n; ++i) err = std::max(err, std::abs(back(i, 0) - grad0(i, 0)));
  std::cout << "Natural-gradient solve: max |A x - g| = " << err << "\n";

  // Communication comparison against the 2D baseline at the same size.
  xsim::Machine machine2d(spec, xsim::ExecMode::Real);
  baselines::scalapack_cholesky(machine2d, grid::choose_grid_2d(p), a.view(), {});
  std::cout << "\nPer-rank volume / modeled time (N = " << n << ", P = " << p << "):\n"
            << "  COnfCHOX:      " << machine.avg_comm_volume() << " words, "
            << machine.modeled_time_overlap() << " s\n"
            << "  2D ScaLAPACK:  " << machine2d.avg_comm_volume() << " words, "
            << machine2d.modeled_time_overlap() << " s\n"
            << "(K-FAC sizes sit at the small-N end of the paper's Figure 11,\n"
            << " where its measured Cholesky speedups reach 1.8x; in this\n"
            << " simulator the 2.5D advantage appears once P grows — try\n"
            << " bench/fig11_cholesky_speedup_grid for the full heatmap)\n";
  return 0;
}
