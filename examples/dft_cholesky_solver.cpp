// Density-functional-theory-style workload (the paper's physical-chemistry
// motivation, Section 9: "simulations require factorizing matrices of atom
// interactions, with sizes from N = 1,024 up to N = 131,072").
//
// The synthetic overlap/interaction matrix S (Gaussian-decay interactions
// over a random atom cloud, SPD by construction) comes from the shared
// generator in tensor/example_problems.hpp — the same matrices the
// solve-service tests and the serve-throughput bench run. COnfCHOX factors
// it, then solves for the response to a set of perturbation vectors — the
// inner kernel of RPA-class calculations.
//
// This example ASSERTS its numerics: a factorization residual past
// kExampleResidualBound or a solve error past example_solve_bound exits
// nonzero, so the smoke-test run in CI is a real end-to-end check, not a
// demo that can rot silently.
//
//   build/examples/dft_cholesky_solver [--atoms=400] [--p=16]
#include <cmath>
#include <iostream>

#include "blas/lapack.hpp"
#include "factor/confchox.hpp"
#include "models/models.hpp"
#include "support/cli.hpp"
#include "support/rng.hpp"
#include "support/stopwatch.hpp"
#include "tensor/example_problems.hpp"

using namespace conflux;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const index_t atoms = cli.get_int("atoms", 400);
  const int p = static_cast<int>(cli.get_int("p", 16));
  const index_t nrhs = cli.get_int("nrhs", 8);
  cli.check_unused();

  std::cout << "Building synthetic overlap matrix for " << atoms << " atoms...\n";
  const MatrixD s = dft_overlap_matrix(atoms, /*sigma=*/0.8, /*seed=*/2024);

  const double memory =
      4.0 * static_cast<double>(atoms) * static_cast<double>(atoms) / p;
  const grid::Grid3D g = models::best_conflux_grid(atoms, p, memory);
  xsim::MachineSpec spec;
  spec.num_ranks = p;
  spec.memory_words = memory;
  xsim::Machine machine(spec, xsim::ExecMode::Real);

  Stopwatch wall;
  const factor::CholResult chol = factor::confchox(machine, g, s.view());
  const double residual = xblas::cholesky_residual(s.view(), chol.factors.view());
  std::cout << "COnfCHOX on grid " << g.px() << "x" << g.py() << "x" << g.pz()
            << ": residual " << residual << " (bound " << kExampleResidualBound
            << ", wall " << wall.seconds() << " s)\n";
  if (!(residual <= kExampleResidualBound)) {
    std::cerr << "FAIL: factorization residual exceeds the bound\n";
    return 1;
  }

  // Solve S X = B for a block of perturbation vectors.
  Rng rng(4242);
  MatrixD b(atoms, nrhs);
  for (index_t i = 0; i < atoms; ++i) {
    for (index_t j = 0; j < nrhs; ++j) b(i, j) = rng.normal();
  }
  const MatrixD b0 = b;
  factor::confchox_solve(chol, b.view());
  // Verify: S * X ~= B.
  MatrixD check_b(atoms, nrhs, 0.0);
  xblas::gemm(xblas::Trans::None, xblas::Trans::None, 1.0, s.view(), b.view(), 0.0,
              check_b.view());
  double err = 0.0;
  for (index_t i = 0; i < atoms; ++i) {
    for (index_t j = 0; j < nrhs; ++j) {
      err = std::max(err, std::abs(check_b(i, j) - b0(i, j)));
    }
  }
  const double bound = example_solve_bound(s.view());
  std::cout << "Solved " << nrhs << " response vectors; max |S x - b| = " << err
            << " (bound " << bound << ")\nSimulated machine: "
            << machine.avg_comm_volume() << " words/rank moved, modeled time "
            << machine.elapsed_time() << " s\n";
  if (!(err <= bound)) {
    std::cerr << "FAIL: solve error exceeds the bound\n";
    return 1;
  }
  return 0;
}
