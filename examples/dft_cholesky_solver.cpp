// Density-functional-theory-style workload (the paper's physical-chemistry
// motivation, Section 9: "simulations require factorizing matrices of atom
// interactions, with sizes from N = 1,024 up to N = 131,072").
//
// We build a synthetic overlap/interaction matrix S for a set of atoms with
// a Gaussian-decay interaction (SPD by construction), factor it with
// COnfCHOX, and solve for the response to a set of perturbation vectors —
// the inner kernel of RPA-class calculations.
//
//   build/examples/dft_cholesky_solver [--atoms=400] [--p=16]
#include <cmath>
#include <iostream>

#include "blas/lapack.hpp"
#include "factor/confchox.hpp"
#include "models/models.hpp"
#include "support/cli.hpp"
#include "support/rng.hpp"
#include "support/stopwatch.hpp"

using namespace conflux;

namespace {

/// Synthetic atom cloud + Gaussian overlap matrix S_ij = exp(-|r_i - r_j|^2
/// / 2 sigma^2) + diagonal regularization: SPD, with the decaying structure
/// of real basis-set overlap matrices.
MatrixD overlap_matrix(index_t atoms, double sigma, Rng& rng) {
  std::vector<std::array<double, 3>> pos(static_cast<std::size_t>(atoms));
  const double box = std::cbrt(static_cast<double>(atoms));
  for (auto& r : pos) {
    r = {rng.uniform(0.0, box), rng.uniform(0.0, box), rng.uniform(0.0, box)};
  }
  MatrixD s(atoms, atoms);
  for (index_t i = 0; i < atoms; ++i) {
    for (index_t j = 0; j <= i; ++j) {
      double d2 = 0.0;
      for (int k = 0; k < 3; ++k) {
        const double d = pos[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)] -
                         pos[static_cast<std::size_t>(j)][static_cast<std::size_t>(k)];
        d2 += d * d;
      }
      const double v = std::exp(-d2 / (2.0 * sigma * sigma));
      s(i, j) = v;
      s(j, i) = v;
    }
    s(i, i) += 0.1;  // basis regularization keeps S well-conditioned
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const index_t atoms = cli.get_int("atoms", 400);
  const int p = static_cast<int>(cli.get_int("p", 16));
  const index_t nrhs = cli.get_int("nrhs", 8);
  cli.check_unused();

  Rng rng(2024);
  std::cout << "Building synthetic overlap matrix for " << atoms << " atoms...\n";
  const MatrixD s = overlap_matrix(atoms, /*sigma=*/0.8, rng);

  const double memory =
      4.0 * static_cast<double>(atoms) * static_cast<double>(atoms) / p;
  const grid::Grid3D g = models::best_conflux_grid(atoms, p, memory);
  xsim::MachineSpec spec;
  spec.num_ranks = p;
  spec.memory_words = memory;
  xsim::Machine machine(spec, xsim::ExecMode::Real);

  Stopwatch wall;
  const factor::CholResult chol = factor::confchox(machine, g, s.view());
  std::cout << "COnfCHOX on grid " << g.px() << "x" << g.py() << "x" << g.pz()
            << ": residual " << xblas::cholesky_residual(s.view(), chol.factors.view())
            << " (wall " << wall.seconds() << " s)\n";

  // Solve S X = B for a block of perturbation vectors.
  MatrixD b(atoms, nrhs);
  for (index_t i = 0; i < atoms; ++i) {
    for (index_t j = 0; j < nrhs; ++j) b(i, j) = rng.normal();
  }
  const MatrixD b0 = b;
  factor::confchox_solve(chol, b.view());
  // Verify: S * X ~= B.
  MatrixD check_b(atoms, nrhs, 0.0);
  xblas::gemm(xblas::Trans::None, xblas::Trans::None, 1.0, s.view(), b.view(), 0.0,
              check_b.view());
  double err = 0.0;
  for (index_t i = 0; i < atoms; ++i) {
    for (index_t j = 0; j < nrhs; ++j) {
      err = std::max(err, std::abs(check_b(i, j) - b0(i, j)));
    }
  }
  std::cout << "Solved " << nrhs << " response vectors; max |S x - b| = " << err
            << "\nSimulated machine: " << machine.avg_comm_volume()
            << " words/rank moved, modeled time " << machine.elapsed_time() << " s\n";
  return 0;
}
