// Shared machinery for the figure/table benches: one Trace run per
// (implementation, N, P) cell, returning the per-rank volume and the
// alpha-beta-gamma time model's elapsed seconds.
//
// All benches print the same rows/series the paper reports; absolute times
// come from the documented machine model (DESIGN.md), so EXPERIMENTS.md
// compares *shapes* (who wins, crossovers, scaling slopes), not nanoseconds.
#pragma once

#include <string>
#include <vector>

#include "baselines/candmc.hpp"
#include "baselines/scalapack2d.hpp"
#include "factor/confchox.hpp"
#include "factor/conflux_lu.hpp"
#include "models/models.hpp"
#include "support/table.hpp"
#include "xsim/machine.hpp"

namespace conflux::bench {

inline xsim::MachineSpec piz_daint_spec(int ranks, double memory_words) {
  xsim::MachineSpec spec;  // defaults documented in xsim/machine.hpp
  spec.num_ranks = ranks;
  spec.memory_words = memory_words;
  return spec;
}

struct RunResult {
  double avg_volume_words = 0.0;  ///< per-rank received words (Score-P style)
  double elapsed_s = 0.0;         ///< alpha-beta-gamma modeled time
  double peak_fraction = 0.0;     ///< useful flops / (P * gamma * T)
};

enum class Impl { Conflux, Mkl, Slate, Candmc };
enum class CholImpl { Confchox, Mkl2D, Slate2D, Capital };

inline const char* impl_name(Impl i) {
  switch (i) {
    case Impl::Conflux: return "COnfLUX";
    case Impl::Mkl: return "MKL";
    case Impl::Slate: return "SLATE";
    case Impl::Candmc: return "CANDMC";
  }
  return "?";
}

inline const char* impl_name(CholImpl i) {
  switch (i) {
    case CholImpl::Confchox: return "COnfCHOX";
    case CholImpl::Mkl2D: return "MKL";
    case CholImpl::Slate2D: return "SLATE";
    case CholImpl::Capital: return "CAPITAL";
  }
  return "?";
}

/// Trace one LU implementation at (n, p) with the paper's memory policy.
inline RunResult run_lu(Impl impl, index_t n, int p) {
  const double mem = models::paper_memory_words(static_cast<double>(n),
                                                static_cast<double>(p));
  xsim::Machine m(piz_daint_spec(p, mem), xsim::ExecMode::Trace);
  switch (impl) {
    case Impl::Conflux: {
      const grid::Grid3D g = models::best_conflux_grid(n, p, mem);
      factor::FactorOptions opt;
      opt.block_size = factor::default_block_size(n, g);
      factor::conflux_lu_trace(m, g, n, opt);
      break;
    }
    case Impl::Mkl:
      baselines::scalapack_lu_trace(m, grid::choose_grid_2d(p), n,
                                    baselines::Baseline2DOptions{.block_size = 64});
      break;
    case Impl::Slate:
      baselines::scalapack_lu_trace(m, grid::choose_grid_2d(p), n,
                                    baselines::slate_defaults());
      break;
    case Impl::Candmc:
      baselines::candmc_lu_trace(m, n, {});
      break;
  }
  RunResult r;
  r.avg_volume_words = m.avg_comm_volume();
  r.elapsed_s = m.modeled_time_overlap();
  r.peak_fraction = models::peak_fraction(models::lu_flops(static_cast<double>(n)),
                                          m.spec(), r.elapsed_s);
  return r;
}

/// Trace one Cholesky implementation at (n, p).
inline RunResult run_cholesky(CholImpl impl, index_t n, int p) {
  const double mem = models::paper_memory_words(static_cast<double>(n),
                                                static_cast<double>(p));
  xsim::Machine m(piz_daint_spec(p, mem), xsim::ExecMode::Trace);
  switch (impl) {
    case CholImpl::Confchox: {
      const grid::Grid3D g = models::best_conflux_grid(n, p, mem);
      factor::FactorOptions opt;
      opt.block_size = factor::default_block_size(n, g);
      factor::confchox_trace(m, g, n, opt);
      break;
    }
    case CholImpl::Mkl2D:
      baselines::scalapack_cholesky_trace(m, grid::choose_grid_2d(p), n,
                                          baselines::Baseline2DOptions{.block_size = 64});
      break;
    case CholImpl::Slate2D:
      baselines::scalapack_cholesky_trace(m, grid::choose_grid_2d(p), n,
                                          baselines::slate_defaults());
      break;
    case CholImpl::Capital:
      baselines::capital_cholesky_trace(m, n, {});
      break;
  }
  RunResult r;
  r.avg_volume_words = m.avg_comm_volume();
  r.elapsed_s = m.modeled_time_overlap();
  r.peak_fraction = models::peak_fraction(
      models::cholesky_flops(static_cast<double>(n)), m.spec(), r.elapsed_s);
  return r;
}

/// Does one N x N double matrix fit in the machine's aggregate memory the
/// paper grants (the grey "input does not fit" cells of Figures 1 and 11)?
inline bool input_fits(index_t n, int p) {
  const double mem = models::paper_memory_words(static_cast<double>(n),
                                                static_cast<double>(p));
  return static_cast<double>(n) * static_cast<double>(n) <=
         mem * static_cast<double>(p);
}

}  // namespace conflux::bench
