// Figure 10: achieved % of machine peak for Cholesky — strong scaling at
// N = 2^17 and N = 2^14, and weak scaling at N = 8192 * sqrt(P).
#include <cmath>
#include <functional>
#include <iostream>

#include "bench_common.hpp"
#include "support/cli.hpp"

namespace bench = conflux::bench;
using conflux::index_t;

namespace {

void scaling_table(const std::string& title, int max_p,
                   const std::function<index_t(int)>& n_of_p) {
  conflux::TextTable table(title);
  table.set_header(
      {"nodes", "P", "N", "COnfCHOX_%", "MKL_%", "SLATE_%", "CAPITAL_%"});
  for (int p = 8; p <= max_p; p *= 2) {
    const index_t n = n_of_p(p);
    if (!bench::input_fits(n, p)) continue;
    const auto cell = [&](bench::CholImpl impl) {
      return 100.0 * bench::run_cholesky(impl, n, p).peak_fraction;
    };
    table.add_row({static_cast<long long>(p / 2), static_cast<long long>(p),
                   static_cast<long long>(n), cell(bench::CholImpl::Confchox),
                   cell(bench::CholImpl::Mkl2D), cell(bench::CholImpl::Slate2D),
                   cell(bench::CholImpl::Capital)});
  }
  table.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const conflux::Cli cli(argc, argv);
  const int max_p = static_cast<int>(cli.get_int("max_p", 1024));
  cli.check_unused();

  scaling_table("Figure 10a: Cholesky strong scaling, N = 131072 (% of peak)",
                max_p, [](int) { return index_t{131072}; });
  scaling_table("Figure 10b: Cholesky strong scaling, N = 16384 (% of peak)",
                max_p, [](int) { return index_t{16384}; });
  scaling_table("Figure 10c: Cholesky weak scaling, N = 8192*sqrt(P) (% of peak)",
                max_p, [](int p) {
                  return static_cast<index_t>(
                      std::llround(8192.0 * std::sqrt(static_cast<double>(p))));
                });
  std::cout << "Paper shape check: COnfCHOX leads; Cholesky peak fractions run\n"
               "below LU's at equal N (half the flops against similar traffic).\n";
  return 0;
}
