// Ablation: the replication depth c = Pz (the "2.5" in 2.5D). Deeper
// replication shrinks the leading N^3/(P sqrt(M)) term as 1/sqrt(c) but
// grows the O(M) = O(c N^2/P) layer-reduction terms linearly — the tension
// behind Section 8's remark that the z-depth is kept tunable with
// heuristic defaults. This sweep shows the measured optimum against the
// best_conflux_grid selection.
#include <iostream>

#include "bench_common.hpp"
#include "support/cli.hpp"

namespace bench = conflux::bench;
namespace factor = conflux::factor;
using conflux::index_t;

int main(int argc, char** argv) {
  const conflux::Cli cli(argc, argv);
  const index_t n = cli.get_int("n", 16384);
  const int p = static_cast<int>(cli.get_int("p", 1024));
  cli.check_unused();

  const double mem = conflux::models::paper_memory_words(static_cast<double>(n),
                                                         static_cast<double>(p));
  const conflux::grid::Grid3D chosen = conflux::models::best_conflux_grid(n, p, mem);

  conflux::TextTable table("Ablation: replication depth c (N = " + std::to_string(n) +
                           ", P = " + std::to_string(p) + ")");
  table.set_header({"c", "grid", "volume_words_per_rank", "modeled_time_s", "chosen"});
  for (int c = 1; c <= p; c *= 2) {
    if (p % c != 0) continue;
    if (static_cast<double>(c) * static_cast<double>(n) * static_cast<double>(n) /
            static_cast<double>(p) >
        mem) {
      break;  // replicated matrix no longer fits
    }
    const int plane = p / c;
    int px = 1;
    for (int d = 1; d * d <= plane; ++d) {
      if (plane % d == 0) px = d;
    }
    const conflux::grid::Grid3D g(px, plane / px, c);
    conflux::xsim::Machine m(bench::piz_daint_spec(p, mem),
                             conflux::xsim::ExecMode::Trace);
    factor::FactorOptions opt;
    opt.block_size = factor::default_block_size(n, g);
    factor::conflux_lu_trace(m, g, n, opt);
    const std::string name = std::to_string(g.px()) + "x" + std::to_string(g.py()) +
                             "x" + std::to_string(g.pz());
    table.add_row({static_cast<long long>(c), name, m.avg_comm_volume(),
                   m.modeled_time_overlap(),
                   std::string(c == chosen.pz() ? "<- chosen" : "")});
  }
  table.print(std::cout);
  std::cout << "\nDesign-choice check: the volume curve is U-shaped in c (leading\n"
               "term ~1/sqrt(c) vs O(M) terms ~c); best_conflux_grid picks the\n"
               "minimum. c = 1 degenerates to a 2D-like volume.\n";
  return 0;
}
