// Table 1: per-step communication and computation costs of COnfLUX vs
// COnfCHOX, by category (pivoting, A00, A10/A01 panels, A11 update),
// measured from the step-cost recorder against the paper's formulas.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "support/cli.hpp"

using conflux::index_t;
namespace factor = conflux::factor;

int main(int argc, char** argv) {
  const conflux::Cli cli(argc, argv);
  const index_t n = cli.get_int("n", 4096);
  const int c = static_cast<int>(cli.get_int("c", 4));
  const index_t v = cli.get_int("v", 128);
  cli.check_unused();

  const conflux::grid::Grid3D g(4, 4, c);
  const int p = g.ranks();
  const double mem = static_cast<double>(c) * static_cast<double>(n) *
                     static_cast<double>(n) / p;

  factor::FactorOptions opt;
  opt.block_size = v;
  opt.record_step_costs = true;

  conflux::xsim::Machine mlu(conflux::bench::piz_daint_spec(p, mem),
                             conflux::xsim::ExecMode::Trace);
  const auto lu = factor::conflux_lu_trace(mlu, g, n, opt);
  conflux::xsim::Machine mch(conflux::bench::piz_daint_spec(p, mem),
                             conflux::xsim::ExecMode::Trace);
  const auto ch = factor::confchox_trace(mch, g, n, opt);

  // Report the first iteration (t = 0, the paper's formulas at N_t = N),
  // normalized per processor, next to the Table 1 expressions.
  const auto& l0 = lu.step_costs.front();
  const auto& c0 = ch.step_costs.front();
  const double nn = static_cast<double>(n);
  const double vv = static_cast<double>(v);
  const double pd = p;
  const double sqrt_p1 = std::sqrt(static_cast<double>(g.px() * g.py()));

  conflux::TextTable table(
      "Table 1: per-step costs at t = 0, per processor (N=" + std::to_string(n) +
      ", P=" + std::to_string(p) + ", c=" + std::to_string(c) +
      ", v=" + std::to_string(v) + ")");
  table.set_header({"row", "measured_LU_comm", "paper_LU_comm", "measured_CHOL_comm",
                    "paper_CHOL_comm", "measured_LU_comp", "measured_CHOL_comp"});
  table.add_row({std::string("pivoting (TournPivot)"), l0.pivoting_words / pd,
                 vv * vv * std::ceil(std::log2(sqrt_p1)) * g.px() / pd,
                 c0.pivoting_words / pd, 0.0, l0.pivoting_flops / pd,
                 c0.pivoting_flops / pd});
  table.add_row({std::string("A00"), l0.a00_words / pd, (vv * vv + vv),
                 c0.a00_words / pd, vv * vv, l0.a00_flops / pd, c0.a00_flops / pd});
  table.add_row({std::string("A10/A01 (reduce+trsm)"), l0.panels_words / pd,
                 2.0 * nn * vv * static_cast<double>(c) / pd, c0.panels_words / pd,
                 2.0 * nn * vv * static_cast<double>(c) / pd, l0.panels_flops / pd,
                 c0.panels_flops / pd});
  table.add_row({std::string("A11 (distribute+update)"), l0.a11_words / pd,
                 2.0 * nn * nn * vv / (pd * std::sqrt(mem)), c0.a11_words / pd,
                 2.0 * nn * nn * vv / (pd * std::sqrt(mem)), l0.a11_flops / pd,
                 c0.a11_flops / pd});
  table.print(std::cout);

  std::cout << "\nTable 1 claims checked:\n"
            << "  comp ratio LU/CHOL (A11):  "
            << l0.a11_flops / c0.a11_flops << "  (paper: 2 - gemmt halves the flops)\n"
            << "  comm ratio LU/CHOL (A11):  " << l0.a11_words / c0.a11_words
            << "  (paper: ~1 - same data needed)\n"
            << "  CHOL pivoting cost:        " << c0.pivoting_words
            << "  (paper: none)\n";
  return 0;
}
