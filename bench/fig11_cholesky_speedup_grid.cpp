// Figure 11: Cholesky runtime speedup of COnfCHOX vs the fastest
// state-of-the-art library (MKL / SLATE / CAPITAL) over the (nodes, N) grid,
// plus COnfCHOX's achieved fraction of machine peak (the Cholesky analogue
// of Figure 1).
#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "support/cli.hpp"

namespace bench = conflux::bench;
using conflux::index_t;

int main(int argc, char** argv) {
  const conflux::Cli cli(argc, argv);
  const index_t max_n = cli.get_int("max_n", 1 << 17);
  const int max_nodes = static_cast<int>(cli.get_int("max_nodes", 512));
  cli.check_unused();

  conflux::TextTable table(
      "Figure 11: COnfCHOX speedup vs fastest of {MKL (M), SLATE (S), CAPITAL (C)}");
  table.set_header({"N", "nodes", "P", "speedup", "second_best", "confchox_%peak"});

  for (index_t n = 2048; n <= max_n; n *= 2) {
    for (int nodes = 2; nodes <= max_nodes; nodes *= 2) {
      const int p = 2 * nodes;
      if (!bench::input_fits(n, p)) continue;
      const bench::RunResult confchox =
          bench::run_cholesky(bench::CholImpl::Confchox, n, p);
      double best_other = 1e300;
      const char* best_name = "?";
      double best_peak = 0.0;
      for (const auto impl : {bench::CholImpl::Mkl2D, bench::CholImpl::Slate2D,
                              bench::CholImpl::Capital}) {
        const bench::RunResult r = bench::run_cholesky(impl, n, p);
        if (r.elapsed_s < best_other) {
          best_other = r.elapsed_s;
          best_name = bench::impl_name(impl);
          best_peak = r.peak_fraction;
        }
      }
      if (confchox.peak_fraction < 0.03 && best_peak < 0.03) continue;
      table.add_row({static_cast<long long>(n), static_cast<long long>(nodes),
                     static_cast<long long>(p), best_other / confchox.elapsed_s,
                     std::string(best_name), 100.0 * confchox.peak_fraction});
    }
  }
  table.print(std::cout);
  std::cout << "\nPaper shape check: speedups up to ~1.8x (vs the ~3x of LU), with\n"
               "the largest wins at small-to-medium N per node.\n";
  return 0;
}
