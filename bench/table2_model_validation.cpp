// Table 2: parallel I/O cost models of all five implementations, validated
// against traced volumes. The paper reports model error within +/-3% for
// MKL, SLATE, COnfLUX and COnfCHOX, and 30-40% overapproximation for the
// CANDMC/CAPITAL author models; here the exact schedule models reproduce the
// traces to machine precision and the paper-form (leading-term) models carry
// the replication O(M) terms as their error.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "support/cli.hpp"

namespace bench = conflux::bench;
namespace models = conflux::models;
using conflux::index_t;

int main(int argc, char** argv) {
  const conflux::Cli cli(argc, argv);
  const index_t n = cli.get_int("n", 16384);
  cli.check_unused();

  conflux::TextTable table("Table 2: model vs measured per-rank volume [words], N = " +
                           std::to_string(n));
  table.set_header({"impl", "P", "measured", "model", "model_err_%", "model_kind"});

  for (int p : {64, 256, 1024}) {
    const double nn = static_cast<double>(n);
    const double mem = models::paper_memory_words(nn, static_cast<double>(p));
    const auto g2 = conflux::grid::choose_grid_2d(p);
    const auto g3 = models::best_conflux_grid(n, p, mem);
    const index_t v = conflux::factor::default_block_size(n, g3);

    const auto add = [&](const char* name, double measured, double model,
                         const char* kind) {
      table.add_row({std::string(name), static_cast<long long>(p), measured, model,
                     100.0 * (model - measured) / measured, std::string(kind)});
    };
    add("COnfLUX", bench::run_lu(bench::Impl::Conflux, n, p).avg_volume_words,
        models::conflux_lu_volume_exact(n, g3, v), "exact schedule model");
    add("COnfLUX", bench::run_lu(bench::Impl::Conflux, n, p).avg_volume_words,
        models::conflux_volume(nn, p, mem), "paper leading term");
    add("COnfCHOX", bench::run_cholesky(bench::CholImpl::Confchox, n, p).avg_volume_words,
        models::confchox_volume_exact(n, g3, v), "exact schedule model");
    add("MKL", bench::run_lu(bench::Impl::Mkl, n, p).avg_volume_words,
        models::mkl_lu_volume(nn, g2), "Table 2 closed form");
    add("SLATE", bench::run_lu(bench::Impl::Slate, n, p).avg_volume_words,
        models::slate_lu_volume(nn, g2), "Table 2 closed form");
    add("CANDMC", bench::run_lu(bench::Impl::Candmc, n, p).avg_volume_words,
        models::candmc_lu_volume(nn, p, mem), "authors' model [61]");
    add("CAPITAL", bench::run_cholesky(bench::CholImpl::Capital, n, p).avg_volume_words,
        models::capital_cholesky_volume(nn, p, mem), "authors' model [33]");
  }
  table.print(std::cout);
  std::cout << "\nPaper claim checked: exact schedule models match measurements\n"
               "(sub-percent); the 2D closed forms land within a few percent; the\n"
               "COnfLUX leading term under-counts by the O(M) replication terms,\n"
               "which shrink as P grows at fixed N.\n";
  return 0;
}
