// Solve-service throughput bench (ISSUE 9): drive the multi-tenant
// SolveService with an open-loop request stream and record sustained
// throughput plus tail latency into BENCH_serve.json.
//
// Two workloads:
//
//   1. Open loop: requests arrive on a fixed schedule (arrival times are
//      independent of completions — no coordinated omission), drawn from a
//      mixed pool of K-FAC and DFT shaped problems (tensor/example_problems)
//      across methods (LU / Cholesky), precisions (fp64 / mixed) and
//      priority classes. Reported: sustained req/s, p50/p95/p99 of the
//      end-to-end response latency, admission rejections, cache hit rate.
//
//   2. Repeated solve at the acceptance size (n = 1024 by default): one cold
//      factor+solve, then the same request again off the warm cache. The
//      acceptance gate — printed measured-vs-gated, pass or fail, like every
//      gate in factor_schedule — requires the cache-hit solve latency to be
//      under 0.5x the cold factor+solve latency; the hit skips the O(n^3)
//      factorization entirely, so a ratio anywhere near 1 means the cache
//      stopped being consulted.
//
// Usage:
//   serve_throughput [--out=BENCH_serve.json] [--requests=240] [--rate=0]
//                    [--threads=0] [--gate-n=1024] [--reps=5] [--seed=9001]
//   --rate=0    auto: 0.7 * threads / warm mean latency, clamped [20, 2000]
//   --threads=0 CONFLUX_SERVE_THREADS (default 2)
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "serve/service.hpp"
#include "support/cli.hpp"
#include "support/json.hpp"
#include "support/rng.hpp"
#include "tensor/example_problems.hpp"
#include "tensor/random_matrix.hpp"

using namespace conflux;

namespace {

struct Problem {
  std::string name;
  MatrixD a;
  MatrixD b;
};

/// Nearest-rank percentile of an unsorted sample (q in (0, 1]).
double percentile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(v.size())));
  return v[std::min(v.size() - 1, rank == 0 ? 0 : rank - 1)];
}

bool g_gates_ok = true;

/// Same reporting contract as factor_schedule: every gate prints measured vs
/// gated, pass or fail, so margins are visible before they disappear.
void gate(const char* name, const std::string& where, double measured,
          double limit, bool pass) {
  if (limit > 0.0 && std::isfinite(measured)) {
    std::printf("gate %-22s %-22s measured %11.4g vs gated %11.4g "
                "(ratio %.3fx) %s\n",
                name, where.c_str(), measured, limit, measured / limit,
                pass ? "PASS" : "FAIL");
  } else {
    std::printf("gate %-22s %-22s measured %11.4g vs gated %11.4g %s\n", name,
                where.c_str(), measured, limit, pass ? "PASS" : "FAIL");
  }
  if (!pass) g_gates_ok = false;
}

}  // namespace

int main(int argc, const char** argv) {
  Cli cli(argc, argv);
  const std::string out_path = cli.get_string("out", "BENCH_serve.json");
  const int requests = static_cast<int>(cli.get_int("requests", 240));
  double rate = cli.get_double("rate", 0.0);
  const int threads = static_cast<int>(cli.get_int("threads", 0));
  const index_t gate_n = static_cast<index_t>(cli.get_int("gate-n", 1024));
  const int reps = std::max(1, static_cast<int>(cli.get_int("reps", 5)));
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 9001));
  cli.check_unused();

  // ---- workload pool: the examples' K-FAC and DFT shapes, plus a few
  // cold variants (same shapes, different seeds) so the stream keeps a
  // trickle of cache misses among the repeated-solve traffic.
  std::vector<Problem> pool;
  for (index_t n : {index_t{96}, index_t{128}, index_t{160}}) {
    pool.push_back({"kfac_n" + std::to_string(n),
                    kfac_kronecker_factor(n, 40 + static_cast<std::uint64_t>(n)),
                    random_matrix(n, 4, 50 + static_cast<std::uint64_t>(n))});
  }
  pool.push_back({"dft_a112", dft_overlap_matrix(112, 0.8, 41),
                  random_matrix(112, 4, 51)});
  const std::size_t hot = pool.size();
  for (std::uint64_t v = 0; v < 3; ++v) {
    const index_t n = 128;
    pool.push_back({"kfac_cold" + std::to_string(v),
                    kfac_kronecker_factor(n, 1000 + v),
                    random_matrix(n, 4, 1100 + v)});
  }

  serve::ServiceOptions sopt;
  sopt.threads = threads;
  sopt.queue_depth = std::max(64, requests);  // rejections opt-in via env

  std::printf("serve_throughput: open-loop stream, %d requests, %zu problems\n",
              requests, pool.size());

  serve::SolveService service(sopt);

  // Warm the cache with every hot problem (both methods, both precisions)
  // and take the warm mean latency for the auto arrival rate.
  double warm_mean_s = 0.0;
  int warm_count = 0;
  for (std::size_t i = 0; i < hot; ++i) {
    for (const serve::Method m : {serve::Method::kLu, serve::Method::kCholesky}) {
      for (const serve::Precision p :
           {serve::Precision::kFp64, serve::Precision::kMixed}) {
        serve::SolveRequest req;
        req.method = m;
        req.precision = p;
        req.a = pool[i].a.view();
        req.b = pool[i].b.view();
        const serve::SolveResponse r0 = service.solve(req);  // cold
        if (!r0.ok()) {
          std::fprintf(stderr, "error: warmup failed on %s (%s)\n",
                       pool[i].name.c_str(), r0.status.message().c_str());
          return 1;
        }
        const serve::SolveResponse r1 = service.solve(req);  // warm
        if (!r1.cache_hit) {
          std::fprintf(stderr, "error: warm repeat missed the cache on %s\n",
                       pool[i].name.c_str());
          return 1;
        }
        warm_mean_s += r1.total_s;
        ++warm_count;
      }
    }
  }
  warm_mean_s /= std::max(1, warm_count);
  if (rate <= 0.0) {
    rate = std::clamp(0.7 * static_cast<double>(service.options().threads) /
                          std::max(warm_mean_s, 1e-6),
                      20.0, 2000.0);
  }
  std::printf("warm mean latency %.3f ms -> arrival rate %.1f req/s\n",
              1e3 * warm_mean_s, rate);

  // ---- open loop: submit on schedule, collect after the stream ends.
  Rng rng(seed);
  std::vector<serve::SolveService::Ticket> tickets;
  tickets.reserve(static_cast<std::size_t>(requests));
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < requests; ++i) {
    std::this_thread::sleep_until(
        t0 + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                 std::chrono::duration<double>(static_cast<double>(i) / rate)));
    // 1-in-8 requests draw from the cold variants (evicted or never seen);
    // the rest replay the warmed working set.
    const bool cold = rng.uniform_int(8) == 0 && pool.size() > hot;
    const std::size_t pi = cold ? hot + rng.uniform_int(pool.size() - hot)
                                : rng.uniform_int(hot);
    serve::SolveRequest req;
    req.method = rng.uniform_int(4) == 0 ? serve::Method::kLu
                                         : serve::Method::kCholesky;
    req.precision = rng.uniform_int(4) == 0 ? serve::Precision::kMixed
                                            : serve::Precision::kFp64;
    req.priority = static_cast<serve::Priority>(rng.uniform_int(3));
    req.a = pool[pi].a.view();
    req.b = pool[pi].b.view();
    req.tenant = static_cast<std::uint64_t>(i);
    tickets.push_back(service.submit(req));
  }
  std::vector<double> latencies;
  long long rejected = 0, hits = 0, failed = 0;
  for (auto& t : tickets) {
    serve::SolveResponse r = service.wait(t);
    if (r.status.code() == StatusCode::kAdmissionRejected) {
      ++rejected;
      continue;
    }
    if (!r.ok()) {
      ++failed;
      continue;
    }
    latencies.push_back(r.total_s);
    hits += r.cache_hit ? 1 : 0;
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const double sustained_rps =
      static_cast<double>(latencies.size()) / std::max(wall_s, 1e-9);
  const double p50 = percentile(latencies, 0.50);
  const double p95 = percentile(latencies, 0.95);
  const double p99 = percentile(latencies, 0.99);
  std::printf("open loop: %zu ok, %lld rejected, %lld failed, %lld cache hits; "
              "%.1f req/s sustained; latency p50 %.3f ms  p95 %.3f ms  "
              "p99 %.3f ms\n",
              latencies.size(), rejected, failed, hits, sustained_rps,
              1e3 * p50, 1e3 * p95, 1e3 * p99);
  gate("stream-no-failures", "open-loop", static_cast<double>(failed), 0.0,
       failed == 0);

  // ---- repeated solve at the acceptance size: cold factor+solve once,
  // then the identical request off the warm cache.
  const MatrixD ga = kfac_kronecker_factor(gate_n, 31);
  const MatrixD gb = random_matrix(gate_n, 4, 32);
  serve::ServiceOptions gopt;
  gopt.threads = threads;
  serve::SolveService gservice(gopt);
  serve::SolveRequest greq;
  greq.method = serve::Method::kCholesky;
  greq.a = ga.view();
  greq.b = gb.view();
  const serve::SolveResponse gcold = gservice.solve(greq);
  if (!gcold.ok() || gcold.cache_hit) {
    std::fprintf(stderr, "error: cold gate request invalid (ok=%d hit=%d)\n",
                 gcold.ok() ? 1 : 0, gcold.cache_hit ? 1 : 0);
    return 1;
  }
  double hit_s = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    const serve::SolveResponse gh = gservice.solve(greq);
    if (!gh.ok() || !gh.cache_hit) {
      std::fprintf(stderr, "error: gate repeat was not a cache hit\n");
      return 1;
    }
    hit_s = std::min(hit_s, gh.total_s);
  }
  const std::string gate_where = "n=" + std::to_string(gate_n);
  // Acceptance (ISSUE 9): a cache hit answers in under half the cold
  // factor+solve latency — the factorization is actually being skipped.
  gate("cache-hit-latency", gate_where, hit_s, 0.5 * gcold.total_s,
       hit_s < 0.5 * gcold.total_s);
  std::printf("repeated solve %s: cold %.3f ms (factor %.3f ms), best hit "
              "%.3f ms\n",
              gate_where.c_str(), 1e3 * gcold.total_s, 1e3 * gcold.factor_s,
              1e3 * hit_s);

  // ---- BENCH_serve.json (schema documented in README.md).
  const serve::SolveService::Stats st = service.stats();
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "error: could not write %s\n", out_path.c_str());
    return 1;
  }
  {
    json::Writer w(out);
    w.begin_object();
    w.field("bench", "serve_throughput");
    w.field("threads", service.options().threads);
    w.field("queue_depth", service.options().queue_depth);
    w.key("open_loop");
    w.begin_object();
    w.field("requests", requests);
    w.field("arrival_rate_rps", rate);
    w.field("sustained_rps", sustained_rps);
    w.field("completed", static_cast<long long>(latencies.size()));
    w.field("rejected", rejected);
    w.field("failed", failed);
    w.field("cache_hits", hits);
    w.field("cache_hit_rate",
            latencies.empty() ? 0.0
                              : static_cast<double>(hits) /
                                    static_cast<double>(latencies.size()));
    w.key("latency_s");
    w.begin_object();
    w.field("p50", p50);
    w.field("p95", p95);
    w.field("p99", p99);
    w.end_object();
    w.key("service_stats");
    w.begin_object();
    w.field("submitted", st.submitted);
    w.field("ok", st.ok);
    w.field("degraded", st.degraded);
    w.field("failed", st.failed);
    w.field("queue_high_water", st.queue_high_water);
    w.field("cache_insertions", st.cache.insertions);
    w.field("cache_evictions", st.cache.evictions);
    w.end_object();
    w.end_object();
    w.key("repeated_solve");
    w.begin_object();
    w.field("n", static_cast<long long>(gate_n));
    w.field("cold_total_s", gcold.total_s);
    w.field("cold_factor_s", gcold.factor_s);
    w.field("hit_total_s", hit_s);
    w.field("hit_over_cold", hit_s / gcold.total_s);
    w.field("gate_limit", 0.5);
    w.field("gate_pass", hit_s < 0.5 * gcold.total_s);
    w.end_object();
    w.end_object();
  }
  out << "\n";
  if (!out) {
    std::fprintf(stderr, "error: could not write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return g_gates_ok ? 0 : 1;
}
