// Section 7.4 / Lemma 10 reproduction: measured COnfLUX/COnfCHOX volumes
// against the Section 6 lower bounds — the paper's near-optimality claim
// (leading term 1.5x the LU bound; ~3x the Cholesky bound).
//
// Two tables:
//   - modeled: Trace-mode per-rank communication volume at the paper's
//     scales (N up to 65536, P up to 1024) vs the closed-form bound;
//   - measured: Real-mode execution at a host-feasible size with the
//     metrics registry armed — the dm.* byte counters aggregated by
//     obs::audit_data_movement into measured words/rank vs the same bound.
// The measured ratio counts every workspace touch of the shared-memory
// data path, so it sits a constant factor above the modeled communication
// ratio; the gate asserts that factor stays fixed (the implementation
// moves O(lower bound) data end to end).
#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "daap/bounds.hpp"
#include "obs/audit.hpp"
#include "support/cli.hpp"
#include "support/metrics.hpp"
#include "tensor/random_matrix.hpp"

namespace bench = conflux::bench;
namespace models = conflux::models;
using conflux::index_t;

namespace {

/// Real-mode audited run at a host-feasible (n, p): returns the measured
/// audit with the Trace model's per-rank volume attached for comparison.
conflux::obs::DataMovementAudit measured_audit(bool lu, index_t n, int p) {
  namespace factor = conflux::factor;
  namespace obs = conflux::obs;
  const double nn = static_cast<double>(n);
  const double mem = models::paper_memory_words(nn, static_cast<double>(p));
  const conflux::grid::Grid3D g = models::best_conflux_grid(n, p, mem);
  factor::FactorOptions opt;
  opt.block_size = factor::default_block_size(n, g);
  const conflux::MatrixD a =
      lu ? conflux::random_matrix(n, n, 1) : conflux::random_spd_matrix(n, 2);
  const double modeled = lu ? models::conflux_lu_volume_exact(n, g, opt.block_size)
                            : models::confchox_volume_exact(n, g, opt.block_size);

  const bool was_enabled = conflux::metrics::enabled();
  conflux::metrics::set_enabled(true);
  const conflux::metrics::Snapshot before = conflux::metrics::snapshot();
  {
    conflux::xsim::Machine m(bench::piz_daint_spec(p, mem),
                             conflux::xsim::ExecMode::Real);
    if (lu) {
      factor::conflux_lu(m, g, a.view(), opt);
    } else {
      factor::confchox(m, g, a.view(), opt);
    }
  }
  const conflux::metrics::Snapshot after = conflux::metrics::snapshot();
  conflux::metrics::set_enabled(was_enabled);
  return obs::audit_data_movement(lu ? obs::Kernel::kLu : obs::Kernel::kCholesky,
                                  before, after, nn, static_cast<double>(p),
                                  mem, modeled);
}

}  // namespace

int main(int argc, char** argv) {
  const conflux::Cli cli(argc, argv);
  cli.check_unused();

  conflux::TextTable table(
      "Near-optimality: modeled volume / Section 6 lower bound");
  table.set_header({"kernel", "N", "P", "modeled", "lower_bound", "ratio"});
  for (index_t n : {index_t{16384}, index_t{65536}}) {
    for (int p : {256, 1024}) {
      if (!bench::input_fits(n, p)) continue;
      const double nn = static_cast<double>(n);
      const double mem = models::paper_memory_words(nn, static_cast<double>(p));
      const double lu = bench::run_lu(bench::Impl::Conflux, n, p).avg_volume_words;
      const double lub = models::lu_lower_bound(nn, p, mem);
      table.add_row({std::string("LU"), static_cast<long long>(n),
                     static_cast<long long>(p), lu, lub, lu / lub});
      const double ch =
          bench::run_cholesky(bench::CholImpl::Confchox, n, p).avg_volume_words;
      const double chb = models::cholesky_lower_bound(nn, p, mem);
      table.add_row({std::string("Cholesky"), static_cast<long long>(n),
                     static_cast<long long>(p), ch, chb, ch / chb});
    }
  }
  table.print(std::cout);
  std::cout << "\nPaper claims: leading-term ratio 1.5x for LU (Lemma 10) and ~3x\n"
               "for Cholesky (Section 7.5); modeled ratios sit above these by the\n"
               "O(M) replication terms, shrinking with P at fixed N.\n";

  // Measured section: Real execution at a host-feasible size, metrics on.
  conflux::TextTable mtable(
      "Measured data movement (Real mode, dm.* counters) vs the same bound");
  mtable.set_header(
      {"kernel", "N", "P", "measured", "lower_bound", "ratio", "model_ratio"});
  const index_t mn = 2048;
  const int mp = 64;
  bool gate_ok = true;
  for (const bool lu : {true, false}) {
    const conflux::obs::DataMovementAudit audit = measured_audit(lu, mn, mp);
    mtable.add_row({std::string(lu ? "LU" : "Cholesky"),
                    static_cast<long long>(mn), static_cast<long long>(mp),
                    audit.measured_words_per_rank, audit.lower_bound_words,
                    audit.measured_ratio, audit.model_ratio});
    // Gate: the measured (every-touch) ratio stays within a fixed factor
    // of the model's (communication-only) ratio. Observed ~3-6x across
    // kernels and grids; 16x headroom means only an asymptotic regression
    // (say, an unblocked re-read of the trailing matrix) trips it.
    const bool ok = std::isfinite(audit.measured_ratio) &&
                    audit.measured_ratio >= 1.0 &&
                    audit.model_ratio > 0.0 &&
                    audit.measured_ratio <= 16.0 * audit.model_ratio;
    if (!ok) {
      std::fprintf(stderr,
                   "error: measured ratio %.2f out of range vs model ratio "
                   "%.2f for %s\n",
                   audit.measured_ratio, audit.model_ratio,
                   lu ? "LU" : "Cholesky");
      gate_ok = false;
    }
  }
  mtable.print(std::cout);
  std::cout << "\nThe measured column counts every workspace touch of the\n"
               "shared-memory Real path (both sides of each copy, operand\n"
               "re-reads per task), so its ratio sits a constant factor above\n"
               "the modeled communication ratio — gated at 16x of the model.\n";
  return gate_ok ? 0 : 1;
}
