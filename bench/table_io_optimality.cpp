// Section 7.4 / Lemma 10 reproduction: measured COnfLUX/COnfCHOX volumes
// against the Section 6 lower bounds — the paper's near-optimality claim
// (leading term 1.5x the LU bound; ~3x the Cholesky bound).
#include <iostream>

#include "bench_common.hpp"
#include "daap/bounds.hpp"
#include "support/cli.hpp"

namespace bench = conflux::bench;
namespace models = conflux::models;
using conflux::index_t;

int main(int argc, char** argv) {
  const conflux::Cli cli(argc, argv);
  cli.check_unused();

  conflux::TextTable table(
      "Near-optimality: measured volume / Section 6 lower bound");
  table.set_header({"kernel", "N", "P", "measured", "lower_bound", "ratio"});
  for (index_t n : {index_t{16384}, index_t{65536}}) {
    for (int p : {256, 1024}) {
      if (!bench::input_fits(n, p)) continue;
      const double nn = static_cast<double>(n);
      const double mem = models::paper_memory_words(nn, static_cast<double>(p));
      const double lu = bench::run_lu(bench::Impl::Conflux, n, p).avg_volume_words;
      const double lub = models::lu_lower_bound(nn, p, mem);
      table.add_row({std::string("LU"), static_cast<long long>(n),
                     static_cast<long long>(p), lu, lub, lu / lub});
      const double ch =
          bench::run_cholesky(bench::CholImpl::Confchox, n, p).avg_volume_words;
      const double chb = models::cholesky_lower_bound(nn, p, mem);
      table.add_row({std::string("Cholesky"), static_cast<long long>(n),
                     static_cast<long long>(p), ch, chb, ch / chb});
    }
  }
  table.print(std::cout);
  std::cout << "\nPaper claims: leading-term ratio 1.5x for LU (Lemma 10) and ~3x\n"
               "for Cholesky (Section 7.5); measured ratios sit above these by the\n"
               "O(M) replication terms, shrinking with P at fixed N.\n";
  return 0;
}
