// Figure 8c: communication-volume reduction of COnfLUX vs the second-best
// implementation — measured (traced) for the Piz Daint-scale grid, and
// model-predicted up to P = 262144 ranks (the Summit-scale prediction, where
// the paper expects ~2.1x).
#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "support/cli.hpp"

namespace bench = conflux::bench;
namespace models = conflux::models;
using conflux::index_t;

int main(int argc, char** argv) {
  const conflux::Cli cli(argc, argv);
  const index_t max_n = cli.get_int("max_n", 1 << 16);
  cli.check_unused();

  {
    conflux::TextTable table(
        "Figure 8c (measured): COnfLUX comm reduction vs second best");
    table.set_header({"N", "P", "reduction", "second_best"});
    for (index_t n = 4096; n <= max_n; n *= 4) {
      for (int p : {64, 256, 1024}) {
        if (!bench::input_fits(n, p)) continue;
        const double conflux =
            bench::run_lu(bench::Impl::Conflux, n, p).avg_volume_words;
        double best = 1e300;
        const char* name = "?";
        for (const auto impl :
             {bench::Impl::Mkl, bench::Impl::Slate, bench::Impl::Candmc}) {
          const double v = bench::run_lu(impl, n, p).avg_volume_words;
          if (v < best) {
            best = v;
            name = bench::impl_name(impl);
          }
        }
        table.add_row({static_cast<long long>(n), static_cast<long long>(p),
                       best / conflux, std::string(name)});
      }
    }
    table.print(std::cout);
  }

  {
    conflux::TextTable table(
        "\nFigure 8c (predicted, cost models): up to P = 262144");
    table.set_header({"N", "P", "predicted_reduction"});
    for (const double n : {65536.0, 262144.0, 1048576.0}) {
      for (const double p : {4096.0, 32768.0, 262144.0}) {
        const double mem = models::paper_memory_words(n, p);
        if (n * n > mem * p) continue;
        const auto g2 = conflux::grid::choose_grid_2d(static_cast<int>(p));
        const double conflux = models::conflux_volume(n, p, mem);
        const double second =
            std::min({models::mkl_lu_volume(n, g2), models::slate_lu_volume(n, g2),
                      models::candmc_lu_volume(n, p, mem)});
        table.add_row({static_cast<long long>(n), static_cast<long long>(p),
                       second / conflux});
      }
    }
    table.print(std::cout);
    std::cout << "\nPaper shape check: reduction grows with P (1.2-1.6x measured at\n"
                 "P <= 1024, ~2x and beyond predicted at exascale-class P).\n";
  }
  return 0;
}
