// Factorization schedule benchmark: Real-mode wall time plus all four
// modeled times (strict BSP, bounded-overlap timeline, lookahead-pipelined
// timeline, perfect overlap) for COnfLUX and COnfCHOX over a small
// (n, grid) sweep, written to BENCH_factor.json so factorization
// performance is tracked across PRs the same way BENCH_blas.json tracks
// the local kernels.
//
// Each cell runs the schedule three times:
//   - Real mode step-synchronous, timed with a wall clock;
//   - Real mode with lookahead pipelining on the persistent task pool
//     (identical factors by construction; lookahead_wall_s plus the pool's
//     urgent/lazy busy and idle breakdown are recorded, and at the --large
//     n=2048 P=64 cell with >= 2 threads lookahead being no slower than
//     step-synchronous is a hard acceptance gate);
//   - Trace mode with event recording, replayed through sched::Timeline
//     for the model times (identical charges, no matrix data).
//
// Usage:
//   factor_schedule [--out=BENCH_factor.json] [--large] [--serial-baseline]
//                   [--trace=conflux_lu_trace.json] [--reps=1]
//   --large            adds the n=2048, P=64 acceptance cell
//   --serial-baseline  re-times Real mode with 1 OpenMP thread and reports
//                      the rank-parallel speedup per cell
//   --trace=FILE       writes a Chrome trace (about:tracing) of the last
//                      LU cell's bounded-overlap timeline
#include <algorithm>
#include <cmath>
#include <limits>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "factor/confchox.hpp"
#include "factor/conflux_lu.hpp"
#include "factor/mixed.hpp"
#include "models/models.hpp"
#include "obs/audit.hpp"
#include "recover/options.hpp"
#include "recover/snapshot.hpp"
#include "sched/chrome_trace.hpp"
#include "sched/event.hpp"
#include "sched/taskpool.hpp"
#include "sched/timeline.hpp"
#include "blas/microkernel.hpp"
#include "blas/tuning.hpp"
#include "support/buildinfo.hpp"
#include "support/cli.hpp"
#include "support/json.hpp"
#include "support/metrics.hpp"
#include "support/profile.hpp"
#include "support/stopwatch.hpp"
#include "tensor/random_matrix.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

using namespace conflux;

namespace {

struct Cell {
  index_t n;
  int px, py, pz;
  index_t v;
};

struct Row {
  std::string algo;
  Cell cell;
  double real_wall_s = 0.0;
  double serial_wall_s = 0.0;  // 0 when --serial-baseline is off
  double real_gflops = 0.0;    // factorization flops / real_wall_s
  double workspace_peak_words = 0.0;  // Real-mode resident data-path words
  double t_bsp = 0.0;
  double t_timeline = 0.0;
  double t_lookahead = 0.0;  // lookahead-pipelined model time
  double t_overlap = 0.0;
  int threads = 1;
  // Lookahead real-execution record: wall time plus the task pool's
  // busy/idle split over the timed run (la_idle_s ~ threads * wall - busy).
  double lookahead_wall_s = 0.0;
  double la_urgent_busy_s = 0.0;
  double la_lazy_busy_s = 0.0;
  double la_other_busy_s = 0.0;
  double la_idle_s = 0.0;
  // Mixed-precision solve record (LU and Cholesky cells): fp32 factor + fp64
  // iterative refinement vs the all-fp64 direct solve, judged by the same
  // normwise backward error. The acceptance bar (ISSUE 4): refinement reaches
  // the direct-solve backward error within 10x in <= 3 steps.
  int ir_steps = 0;
  double ir_backward_error = 0.0;
  double direct_backward_error = 0.0;
  double fp32_wall_s = 0.0;  // fp32 factorization wall time (same schedule)
  // Degradation-ladder record (ISSUE 6): the solve leg runs through the
  // _ex ladder driver, so fallback engagement is measured, and the healthy
  // gate below asserts it stays at zero on these well-conditioned inputs.
  long long ladder_solves = 0;
  long long ladder_fp64_fallbacks = 0;
  bool fallback_engaged = false;
  // Metrics leg (tentpole): the same lookahead run with the registry armed.
  // metrics_off_wall_s re-times the disarmed run adjacent to the armed one,
  // so the <= 1.02x overhead gate compares back-to-back measurements.
  double metrics_wall_s = 0.0;
  double metrics_off_wall_s = 0.0;
  // min over interleaved (disarmed, armed) pairs of armed/disarmed — the
  // overhead estimate the gate uses (drift-immune: both runs of a pair
  // execute back to back).
  double metrics_pair_ratio = 0.0;
  // Recovery legs (ISSUE 8): the lookahead run re-timed with (a) step
  // checkpointing at the recommended default interval and (b) ABFT checksum
  // verification armed. Both are bitwise inert on healthy runs
  // (recover_test pins that), so only time is at stake; the pair ratios
  // follow the same interleaved min-over-pairs scheme as the metrics gate.
  double ckpt_wall_s = 0.0;
  double ckpt_off_wall_s = 0.0;
  double ckpt_pair_ratio = 0.0;
  double ckpt_saves_per_run = 0.0;   // recover.ckpt.saves per armed run
  double ckpt_bytes_per_run = 0.0;   // recover.ckpt.bytes per armed run
  double ckpt_seconds_per_run = 0.0;  // serialization time per armed run
  double abft_wall_s = 0.0;
  double abft_off_wall_s = 0.0;
  double abft_pair_ratio = 0.0;
  double abft_verified_per_run = 0.0;  // recover.abft.verified per armed run
  obs::DataMovementAudit audit;
  // Task-pool runtime metrics over the audited run.
  double pool_tasks_run = 0.0;
  long long lat_urgent_count = 0;
  double lat_urgent_sum_s = 0.0;
  long long lat_lazy_count = 0;
  double lat_lazy_sum_s = 0.0;
  double ready_depth_max = 0.0;
  double ready_lazy_depth_max = 0.0;
};

xsim::MachineSpec spec_for(const Cell& c) {
  xsim::MachineSpec spec;  // Piz Daint-like defaults (xsim/machine.hpp)
  spec.num_ranks = c.px * c.py * c.pz;
  spec.memory_words = static_cast<double>(c.pz) * static_cast<double>(c.n) *
                      static_cast<double>(c.n) / static_cast<double>(spec.num_ranks);
  return spec;
}

int max_threads() {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

double best_wall(int reps, const auto& run) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    Stopwatch sw;
    run();
    best = std::min(best, sw.seconds());
  }
  return best;
}

Row run_cell(const std::string& algo, const Cell& c, int reps, bool serial_baseline,
             sched::EventLog* trace_log, xsim::MachineSpec* trace_spec) {
  const grid::Grid3D g(c.px, c.py, c.pz);
  const xsim::MachineSpec spec = spec_for(c);
  factor::FactorOptions opt;
  opt.block_size = c.v;
  const bool lu = algo == "conflux_lu";

  Row row{algo, c};
  row.threads = max_threads();

  // Real mode: actual numerics, wall-clocked. The last rep's factors are
  // kept — the direct-solve baseline below reuses them (the factorization
  // is deterministic, so every rep produces bitwise the same result).
  const MatrixD a = lu ? random_matrix(c.n, c.n, 1) : random_spd_matrix(c.n, 2);
  factor::LuResult lud;
  factor::CholResult chold;
  const auto real_run = [&] {
    xsim::Machine m(spec, xsim::ExecMode::Real);
    if (lu) {
      lud = factor::conflux_lu(m, g, a.view(), opt);
      row.workspace_peak_words = lud.workspace_words;
    } else {
      chold = factor::confchox(m, g, a.view(), opt);
      row.workspace_peak_words = chold.workspace_words;
    }
  };
  row.real_wall_s = best_wall(reps, real_run);
  const double nd = static_cast<double>(c.n);
  const double factor_flops = lu ? 2.0 * nd * nd * nd / 3.0 : nd * nd * nd / 3.0;
  row.real_gflops = factor_flops / row.real_wall_s / 1e9;
#ifdef _OPENMP
  if (serial_baseline) {
    const int saved = omp_get_max_threads();
    omp_set_num_threads(1);
    row.serial_wall_s = best_wall(reps, real_run);
    omp_set_num_threads(saved);
  }
#else
  (void)serial_baseline;
#endif

  // Lookahead leg: same schedule, urgent/lazy tasks pipelined on the
  // persistent pool (bitwise-identical factors — packed_factor_test).
  {
    factor::FactorOptions la_opt = opt;
    la_opt.lookahead = 1;
    sched::TaskPool& pool = sched::TaskPool::instance();
    const auto la_run = [&] {
      xsim::Machine m(spec, xsim::ExecMode::Real);
      if (lu) {
        factor::conflux_lu(m, g, a.view(), la_opt);
      } else {
        factor::confchox(m, g, a.view(), la_opt);
      }
    };
    la_run();  // warm the pool's workers and TLS buffers
    pool.reset_stats();
    row.lookahead_wall_s = best_wall(reps, la_run);
    const sched::TaskPoolStats st = pool.stats();
    // Stats accumulate over all reps; scale to one (best) run for the
    // recorded busy split.
    const double scale = 1.0 / static_cast<double>(reps);
    row.la_urgent_busy_s = st.urgent_busy_s * scale;
    row.la_lazy_busy_s = st.lazy_busy_s * scale;
    row.la_other_busy_s = st.other_busy_s * scale;
    const double busy =
        row.la_urgent_busy_s + row.la_lazy_busy_s + row.la_other_busy_s;
    const double capacity =
        static_cast<double>(row.threads) * row.lookahead_wall_s;
    row.la_idle_s = capacity > busy ? capacity - busy : 0.0;
  }

  // Metrics leg (tentpole): the lookahead run with the registry armed. One
  // audited run brackets a metrics snapshot pair — the measured dm.* bytes
  // become the data-movement audit against the Section 6 lower bound — and
  // the timed pair (disarmed vs armed, back to back, best-of-reps) feeds
  // the instrumentation-overhead gate. Instrumentation is read-only on the
  // data path, so every run here produces bitwise the same factors.
  {
    const bool was_enabled = metrics::enabled();
    factor::FactorOptions la_opt = opt;
    la_opt.lookahead = 1;
    const auto la_run = [&] {
      xsim::Machine m(spec, xsim::ExecMode::Real);
      if (lu) {
        factor::conflux_lu(m, g, a.view(), la_opt);
      } else {
        factor::confchox(m, g, a.view(), la_opt);
      }
    };
    // Overhead measurement at the acceptance cell is best-of-5 even with
    // --reps=1, and the disarmed/armed legs INTERLEAVE rep by rep: a 2%
    // gate is tighter than this container's slow thermal/scheduler drift,
    // so each leg must sample every phase of it. Disarmed runs leave the
    // registry untouched (obs_test pins that), so the audit snapshots can
    // bracket the whole interleaved block and still see only armed runs.
    const int gate_reps = c.n >= 2048 ? std::max(reps, 5) : reps;
    metrics::set_enabled(false);
    la_run();  // warm
    metrics::set_enabled(true);
    const metrics::Snapshot before = metrics::snapshot();
    row.metrics_off_wall_s = std::numeric_limits<double>::infinity();
    row.metrics_wall_s = std::numeric_limits<double>::infinity();
    row.metrics_pair_ratio = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < gate_reps; ++rep) {
      metrics::set_enabled(false);
      const double off = best_wall(1, la_run);
      metrics::set_enabled(true);
      const double on = best_wall(1, la_run);
      row.metrics_off_wall_s = std::min(row.metrics_off_wall_s, off);
      row.metrics_wall_s = std::min(row.metrics_wall_s, on);
      // The pair ratio bounds the true overhead from above whenever ONE
      // pair lands in a quiet scheduling window; min over pairs is the
      // tightest such bound this container can produce.
      if (off > 0.0) row.metrics_pair_ratio = std::min(row.metrics_pair_ratio, on / off);
    }
    const metrics::Snapshot after = metrics::snapshot();
    metrics::set_enabled(was_enabled);
    // The dm.* counters accumulated over gate_reps identical runs.
    const double per_run = 1.0 / static_cast<double>(gate_reps);
    const double modeled_words =
        lu ? models::conflux_lu_volume_exact(c.n, g, c.v)
           : models::confchox_volume_exact(c.n, g, c.v);
    row.audit = obs::audit_data_movement(
        lu ? obs::Kernel::kLu : obs::Kernel::kCholesky, before, after,
        static_cast<double>(c.n), static_cast<double>(spec.num_ranks),
        spec.memory_words, modeled_words);
    row.audit.measured_bytes *= per_run;
    row.audit.measured_words_per_rank *= per_run;
    row.audit.measured_ratio *= per_run;
    for (auto& b : row.audit.breakdown) b.bytes *= per_run;
    row.pool_tasks_run =
        (after.value("pool.tasks_run") - before.value("pool.tasks_run")) *
        per_run;
    if (const metrics::MetricValue* h = after.find("pool.latency_urgent_s")) {
      const metrics::MetricValue* h0 = before.find("pool.latency_urgent_s");
      row.lat_urgent_count = h->count - (h0 != nullptr ? h0->count : 0);
      row.lat_urgent_sum_s = h->sum - (h0 != nullptr ? h0->sum : 0.0);
    }
    if (const metrics::MetricValue* h = after.find("pool.latency_lazy_s")) {
      const metrics::MetricValue* h0 = before.find("pool.latency_lazy_s");
      row.lat_lazy_count = h->count - (h0 != nullptr ? h0->count : 0);
      row.lat_lazy_sum_s = h->sum - (h0 != nullptr ? h0->sum : 0.0);
    }
    if (const metrics::MetricValue* g2 = after.find("pool.ready_depth")) {
      row.ready_depth_max = g2->max;
    }
    if (const metrics::MetricValue* g2 = after.find("pool.ready_lazy_depth")) {
      row.ready_lazy_depth_max = g2->max;
    }
  }

  // Recovery legs (ISSUE 8): re-time the lookahead run with checkpointing
  // at the recommended default interval, then with ABFT verification armed.
  // Interleaved back-to-back (off, on) pairs, min pair ratio — same drift
  // rationale as the metrics gate. The registry stays armed across both
  // legs so the recover.* counters record what each armed run actually did
  // (saves, bytes, verified steps); both sides of every pair see the same
  // registry state, so the comparison stays fair.
  {
    const bool was_enabled = metrics::enabled();
    factor::FactorOptions la_opt = opt;
    la_opt.lookahead = 1;
    const auto la_run = [&] {
      xsim::Machine m(spec, xsim::ExecMode::Real);
      if (lu) {
        factor::conflux_lu(m, g, a.view(), la_opt);
      } else {
        factor::confchox(m, g, a.view(), la_opt);
      }
    };
    const int gate_reps = c.n >= 2048 ? std::max(reps, 5) : reps;
    metrics::set_enabled(true);

    recover::Options ckpt_on;
    ckpt_on.ckpt_every = recover::kDefaultCkptEvery;
    const metrics::Snapshot ck0 = metrics::snapshot();
    row.ckpt_off_wall_s = std::numeric_limits<double>::infinity();
    row.ckpt_wall_s = std::numeric_limits<double>::infinity();
    row.ckpt_pair_ratio = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < gate_reps; ++rep) {
      recover::reset();
      const double off = best_wall(1, la_run);
      recover::configure(ckpt_on);
      const double on = best_wall(1, la_run);
      recover::reset();
      row.ckpt_off_wall_s = std::min(row.ckpt_off_wall_s, off);
      row.ckpt_wall_s = std::min(row.ckpt_wall_s, on);
      if (off > 0.0) row.ckpt_pair_ratio = std::min(row.ckpt_pair_ratio, on / off);
    }
    const metrics::Snapshot ck1 = metrics::snapshot();
    const double per_run = 1.0 / static_cast<double>(gate_reps);
    row.ckpt_saves_per_run =
        (ck1.value("recover.ckpt.saves") - ck0.value("recover.ckpt.saves")) *
        per_run;
    row.ckpt_bytes_per_run =
        (ck1.value("recover.ckpt.bytes") - ck0.value("recover.ckpt.bytes")) *
        per_run;
    row.ckpt_seconds_per_run =
        (ck1.value("recover.ckpt.seconds") - ck0.value("recover.ckpt.seconds")) *
        per_run;

    recover::Options abft_on;
    abft_on.abft = true;
    const metrics::Snapshot ab0 = metrics::snapshot();
    row.abft_off_wall_s = std::numeric_limits<double>::infinity();
    row.abft_wall_s = std::numeric_limits<double>::infinity();
    row.abft_pair_ratio = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < gate_reps; ++rep) {
      recover::reset();
      const double off = best_wall(1, la_run);
      recover::configure(abft_on);
      const double on = best_wall(1, la_run);
      recover::reset();
      row.abft_off_wall_s = std::min(row.abft_off_wall_s, off);
      row.abft_wall_s = std::min(row.abft_wall_s, on);
      if (off > 0.0) row.abft_pair_ratio = std::min(row.abft_pair_ratio, on / off);
    }
    const metrics::Snapshot ab1 = metrics::snapshot();
    row.abft_verified_per_run =
        (ab1.value("recover.abft.verified") - ab0.value("recover.abft.verified")) *
        per_run;
    metrics::set_enabled(was_enabled);
    recover::clear();  // drop this cell's snapshots before the next one
  }

  // Mixed-precision solve: fp32 factorization (timed with the same
  // best-of-reps harness as the fp64 wall above, so the published ratio
  // compares equal footing) + blocked fp64 refinement over an 8-column RHS
  // panel, against the all-fp64 direct solve on the identical problem.
  {
    const index_t nrhs = 8;
    const MatrixD b0 = random_matrix(c.n, nrhs, 3);
    MatrixF af(c.n, c.n);
    convert<double, float>(a.view(), af.view());
    factor::LuResultF luf;
    factor::CholResultF cholf;
    const auto fp32_run = [&] {
      xsim::Machine mf(spec, xsim::ExecMode::Real);
      if (lu) {
        luf = factor::conflux_lu(mf, g, af.view(), opt);
      } else {
        cholf = factor::confchox(mf, g, af.view(), opt);
      }
    };
    row.fp32_wall_s = best_wall(reps, fp32_run);
    // The solve goes through the degradation-ladder driver with the fp64
    // fallback armed: on these healthy inputs the fp32 + refinement rung
    // must deliver, and the counters prove it (zero-fallbacks gate below).
    factor::reset_mixed_counters();
    MatrixD bx = b0;
    factor::MixedSolveOptions mopt;
    mopt.factor = opt;
    xsim::Machine ms(spec, xsim::ExecMode::Real);
    const factor::MixedSolveReport mrep =
        lu ? factor::conflux_lu_solve_mixed_ex(ms, g, a.view(), bx.view(), mopt)
           : factor::confchox_solve_mixed_ex(ms, g, a.view(), bx.view(), mopt);
    row.ir_steps = mrep.refine.steps;
    row.ir_backward_error = mrep.refine.backward_error;
    row.fallback_engaged = mrep.fp64_fallback;
    const factor::MixedCounters mc = factor::mixed_counters();
    row.ladder_solves = mc.solves;
    row.ladder_fp64_fallbacks = mc.fp64_fallbacks;

    MatrixD bd = b0;
    if (lu) {
      factor::conflux_lu_solve(lud, bd.view());
    } else {
      factor::confchox_solve(chold, bd.view());
    }
    row.direct_backward_error =
        factor::solve_backward_error(a.view(), bd.view(), b0.view());
  }

  // Trace mode with event recording: the three model times.
  xsim::Machine m(spec, xsim::ExecMode::Trace);
  sched::EventLog log;
  {
    sched::ScopedRecord rec(m, log);
    if (lu) {
      factor::conflux_lu_trace(m, g, c.n, opt);
    } else {
      factor::confchox_trace(m, g, c.n, opt);
    }
  }
  const sched::Timeline tl(log, spec);
  row.t_bsp = m.elapsed_time();
  row.t_timeline = tl.modeled_time();
  row.t_lookahead = tl.modeled_time_lookahead();
  row.t_overlap = m.modeled_time_overlap();
  if (lu && trace_log != nullptr) {
    *trace_log = std::move(log);
    *trace_spec = spec;
  }
  return row;
}

void print_row(const Row& r) {
  std::printf(
      "%-11s n=%-5lld grid %dx%dx%d v=%-3lld  wall %.3fs (%.2f GF/s, ws %.2fM words)",
      r.algo.c_str(), static_cast<long long>(r.cell.n), r.cell.px, r.cell.py,
      r.cell.pz, static_cast<long long>(r.cell.v), r.real_wall_s, r.real_gflops,
      r.workspace_peak_words / 1e6);
  if (r.serial_wall_s > 0.0) {
    std::printf(" (1-thread %.3fs, %.2fx)", r.serial_wall_s,
                r.serial_wall_s / r.real_wall_s);
  }
  std::printf(
      "  model BSP %.4fs >= timeline %.4fs >= lookahead %.4fs >= overlap %.4fs\n",
      r.t_bsp, r.t_timeline, r.t_lookahead, r.t_overlap);
  std::printf(
      "            lookahead wall %.3fs (%.2fx of sync) | busy urgent %.3fs"
      " lazy %.3fs other %.3fs idle %.3fs\n",
      r.lookahead_wall_s,
      r.lookahead_wall_s > 0.0 ? r.lookahead_wall_s / r.real_wall_s : 0.0,
      r.la_urgent_busy_s, r.la_lazy_busy_s, r.la_other_busy_s, r.la_idle_s);
  std::printf(
      "            fp32 factor %.3fs (%.2fx) | IR %d steps, berr %.2e vs direct"
      " %.2e | fp64 fallbacks %lld/%lld\n",
      r.fp32_wall_s, r.fp32_wall_s > 0.0 ? r.real_wall_s / r.fp32_wall_s : 0.0,
      r.ir_steps, r.ir_backward_error, r.direct_backward_error,
      r.ladder_fp64_fallbacks, r.ladder_solves);
  std::printf(
      "            metrics on %.3fs vs off %.3fs (%.3fx) | measured %.3gM"
      " words/rank vs bound %.3gM (%.1fx, model %.1fx) | %lld urgent /"
      " %lld lazy tasks\n",
      r.metrics_wall_s, r.metrics_off_wall_s, r.metrics_pair_ratio,
      r.audit.measured_words_per_rank / 1e6, r.audit.lower_bound_words / 1e6,
      r.audit.measured_ratio, r.audit.model_ratio, r.lat_urgent_count,
      r.lat_lazy_count);
  std::printf(
      "            ckpt on %.3fs vs off %.3fs (%.3fx, %.0f saves %.2gMB"
      " %.3fs/run) | abft on %.3fs vs off %.3fs (%.3fx, %.0f steps verified)\n",
      r.ckpt_wall_s, r.ckpt_off_wall_s, r.ckpt_pair_ratio, r.ckpt_saves_per_run,
      r.ckpt_bytes_per_run / 1e6, r.ckpt_seconds_per_run, r.abft_wall_s,
      r.abft_off_wall_s, r.abft_pair_ratio, r.abft_verified_per_run);
}

bool write_json(const std::string& path, const std::vector<Row>& rows) {
  std::ofstream out(path);
  json::Writer w(out);
  w.begin_array();
  for (const Row& r : rows) {
    w.begin_object();
    w.field("algo", std::string_view(r.algo));
    w.field("n", static_cast<long long>(r.cell.n));
    w.field("px", r.cell.px);
    w.field("py", r.cell.py);
    w.field("pz", r.cell.pz);
    w.field("v", static_cast<long long>(r.cell.v));
    w.field("real_wall_s", r.real_wall_s);
    w.field("serial_wall_s", r.serial_wall_s);
    w.field("real_gflops", r.real_gflops);
    w.field("workspace_peak_words", r.workspace_peak_words);
    w.field("model_bsp_s", r.t_bsp);
    w.field("model_timeline_s", r.t_timeline);
    w.field("model_lookahead_s", r.t_lookahead);
    w.field("model_overlap_s", r.t_overlap);
    w.field("lookahead_wall_s", r.lookahead_wall_s);
    w.field("la_urgent_busy_s", r.la_urgent_busy_s);
    w.field("la_lazy_busy_s", r.la_lazy_busy_s);
    w.field("la_other_busy_s", r.la_other_busy_s);
    w.field("la_idle_s", r.la_idle_s);
    w.field("fp32_wall_s", r.fp32_wall_s);
    w.field("ir_steps", r.ir_steps);
    w.field("ir_backward_error", r.ir_backward_error);
    w.field("direct_backward_error", r.direct_backward_error);
    w.field("ladder_solves", r.ladder_solves);
    w.field("fp64_fallbacks", r.ladder_fp64_fallbacks);
    w.field("threads", r.threads);
    w.field("isa", conflux::xblas::isa_name(conflux::xblas::active_isa()));
    w.field("tuning_source", conflux::xblas::tuning_source());
    w.field("git_describe", conflux::git_describe());
    // Metrics section: overhead pair, the measured data-movement audit,
    // and the task-pool runtime metrics of the audited lookahead run.
    w.key("metrics");
    w.begin_object();
    w.field("metrics_wall_s", r.metrics_wall_s);
    w.field("metrics_off_wall_s", r.metrics_off_wall_s);
    w.field("overhead_ratio", r.metrics_off_wall_s > 0.0
                                  ? r.metrics_wall_s / r.metrics_off_wall_s
                                  : 0.0);
    w.field("overhead_pair_ratio", r.metrics_pair_ratio);
    w.key("data_movement_audit");
    obs::write_json(w, r.audit);
    w.key("pool");
    w.begin_object();
    w.field("tasks_run", r.pool_tasks_run);
    w.field("latency_urgent_count", r.lat_urgent_count);
    w.field("latency_urgent_sum_s", r.lat_urgent_sum_s);
    w.field("latency_lazy_count", r.lat_lazy_count);
    w.field("latency_lazy_sum_s", r.lat_lazy_sum_s);
    w.field("ready_depth_max", r.ready_depth_max);
    w.field("ready_lazy_depth_max", r.ready_lazy_depth_max);
    w.end_object();
    w.end_object();
    // Recovery section: checkpoint and ABFT overhead pairs plus the
    // per-run recover.* counter deltas of the armed legs.
    w.key("recovery");
    w.begin_object();
    w.field("ckpt_wall_s", r.ckpt_wall_s);
    w.field("ckpt_off_wall_s", r.ckpt_off_wall_s);
    w.field("ckpt_overhead_pair_ratio", r.ckpt_pair_ratio);
    w.field("ckpt_saves_per_run", r.ckpt_saves_per_run);
    w.field("ckpt_bytes_per_run", r.ckpt_bytes_per_run);
    w.field("ckpt_seconds_per_run", r.ckpt_seconds_per_run);
    w.field("abft_wall_s", r.abft_wall_s);
    w.field("abft_off_wall_s", r.abft_off_wall_s);
    w.field("abft_overhead_pair_ratio", r.abft_pair_ratio);
    w.field("abft_verified_per_run", r.abft_verified_per_run);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  out << "\n";
  return out.good();
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const std::string out_path = cli.get_string("out", "BENCH_factor.json");
  const std::string trace_path = cli.get_string("trace", "");
  const bool large = cli.get_flag("large");
  const bool serial_baseline = cli.get_flag("serial-baseline");
  const int reps = static_cast<int>(cli.get_int("reps", 1));
  cli.check_unused();

  std::vector<Cell> cells = {
      {512, 2, 2, 1, 32},
      {512, 2, 2, 2, 32},
      {1024, 4, 4, 2, 32},
      {1024, 2, 2, 4, 32},
  };
  if (large) cells.push_back({2048, 4, 4, 4, 64});  // the n=2048, P=64 cell

  std::vector<Row> rows;
  sched::EventLog last_lu_log;
  xsim::MachineSpec last_lu_spec;
  for (const Cell& c : cells) {
    for (const char* algo : {"conflux_lu", "confchox"}) {
      rows.push_back(run_cell(algo, c, reps, serial_baseline,
                              trace_path.empty() ? nullptr : &last_lu_log,
                              &last_lu_spec));
      print_row(rows.back());
    }
  }

  // CONFLUX_TRACE=<file>: one merged Chrome trace of the first cell's LU
  // lookahead run — task-pool worker slices, the factor core's annotated
  // phase spans, and the sampled counter tracks, in a single timeline.
  if (const std::string& unified_path = prof::trace_path(); !unified_path.empty()) {
    const Cell& c = cells.front();
    const grid::Grid3D g(c.px, c.py, c.pz);
    const MatrixD a = random_matrix(c.n, c.n, 1);
    factor::FactorOptions opt;
    opt.block_size = c.v;
    opt.lookahead = 1;
    const bool was_enabled = metrics::enabled();
    metrics::set_enabled(true);
    sched::TaskPool& pool = sched::TaskPool::instance();
    pool.start_recording();
    prof::start_capture();
    {
      xsim::Machine m(spec_for(c), xsim::ExecMode::Real);
      factor::conflux_lu(m, g, a.view(), opt);
    }
    const prof::Capture capture = prof::stop_capture();
    const std::vector<sched::TaskSlice> slices = pool.stop_recording();
    metrics::set_enabled(was_enabled);
    if (sched::write_unified_trace_file(unified_path, slices, capture)) {
      std::printf(
          "wrote unified trace %s (%zu task slices, %zu spans, %zu samples)\n",
          unified_path.c_str(), slices.size(), capture.spans.size(),
          capture.samples.size());
    } else {
      std::fprintf(stderr, "error: could not write %s\n", unified_path.c_str());
      return 1;
    }
  }

  if (!trace_path.empty() && !last_lu_log.events().empty()) {
    sched::TimelineOptions opt;
    opt.record_slices = true;
    const sched::Timeline tl(last_lu_log, last_lu_spec, opt);
    if (sched::write_chrome_trace_file(trace_path, tl)) {
      std::printf("wrote Chrome trace %s (%zu slices; open in about:tracing)\n",
                  trace_path.c_str(), tl.slices().size());
    } else {
      std::fprintf(stderr, "error: could not write %s\n", trace_path.c_str());
      return 1;
    }
  }

  // Sanity + acceptance gates for CI's perf-smoke job. Every gate prints
  // its measured value against the gated threshold — pass or fail — so a
  // run that squeaks by with no margin is visible in the log long before
  // it turns into a red build.
  bool gates_ok = true;
  const auto gate = [&gates_ok](const char* name, const std::string& where,
                                double measured, double limit, bool pass) {
    if (limit > 0.0 && std::isfinite(measured)) {
      std::printf("gate %-22s %-22s measured %11.4g vs gated %11.4g "
                  "(ratio %.3fx) %s\n",
                  name, where.c_str(), measured, limit, measured / limit,
                  pass ? "PASS" : "FAIL");
    } else {
      std::printf("gate %-22s %-22s measured %11.4g vs gated %11.4g %s\n",
                  name, where.c_str(), measured, limit, pass ? "PASS" : "FAIL");
    }
    if (!pass) gates_ok = false;
    return pass;
  };
  for (const Row& r : rows) {
    const std::string where =
        r.algo + " n=" + std::to_string(static_cast<long long>(r.cell.n));
    const bool at_gate_cell =
        r.cell.n == 2048 && r.cell.px * r.cell.py * r.cell.pz == 64;
    // A hung clock, NaN time, or NaN model output must fail the run, not
    // silently land in the record.
    const bool finite_ok =
        std::isfinite(r.real_wall_s) && r.real_wall_s > 0.0 &&
        std::isfinite(r.real_gflops) && std::isfinite(r.t_bsp) &&
        std::isfinite(r.t_timeline) && std::isfinite(r.t_overlap) &&
        std::isfinite(r.t_lookahead) && std::isfinite(r.lookahead_wall_s) &&
        r.lookahead_wall_s > 0.0 && std::isfinite(r.workspace_peak_words);
    gate("finite-measurements", where, r.real_wall_s, 0.0, finite_ok);
    // Model ordering must hold in the record itself: bsp >= timeline >=
    // lookahead >= overlap. Printed as overlap vs bsp (the outer pair).
    const bool order_ok = r.t_bsp >= r.t_timeline &&
                          r.t_timeline >= r.t_lookahead &&
                          r.t_lookahead >= r.t_overlap;
    gate("model-ordering", where, r.t_overlap, r.t_bsp, order_ok);
    // Lookahead acceptance gate (ISSUE 5): at the n=2048 P=64 cell with at
    // least two host threads, pipelined execution must be no slower than
    // step-synchronous. Both legs run best-of-reps of bitwise-identical
    // arithmetic, so any true regression shows up as a systematic gap; the
    // 5% margin covers OS-scheduler noise when the threads oversubscribe
    // the cores (CI runners, containers).
    if (at_gate_cell && r.threads >= 2) {
      gate("lookahead-speed", where, r.lookahead_wall_s, 1.05 * r.real_wall_s,
           r.lookahead_wall_s <= 1.05 * r.real_wall_s);
    }
    // Mixed-precision acceptance gate (ISSUE 4): the refined solve must
    // reach the fp64 direct solve's backward error within 10x in <= 3 steps
    // — or have converged by the dsgesv-style 2*sqrt(n)*eps criterion the
    // refinement loop itself targets (it stops there by design, so when
    // that tolerance sits above 10x an unusually good direct solve, the
    // stricter bar would punish legitimate early convergence).
    const double dsgesv_tol = 2.0 * std::sqrt(static_cast<double>(r.cell.n)) *
                              std::numeric_limits<double>::epsilon();
    const double ir_limit =
        std::max(10.0 * r.direct_backward_error, dsgesv_tol);
    const bool ir_ok = r.ir_steps <= 3 && std::isfinite(r.ir_backward_error) &&
                       r.ir_backward_error <= ir_limit;
    if (!gate("mixed-precision-berr", where, r.ir_backward_error, ir_limit,
              ir_ok)) {
      std::fprintf(stderr,
                   "error: mixed-precision solve off the bar for %s n=%lld "
                   "(steps %d, berr %.3e vs direct %.3e)\n",
                   r.algo.c_str(), static_cast<long long>(r.cell.n), r.ir_steps,
                   r.ir_backward_error, r.direct_backward_error);
    }
    // Degradation-ladder gate (ISSUE 6): the bench inputs are healthy and
    // well conditioned, so the fp64 rung engaging would mean either a
    // numerics regression or an over-eager breakdown classifier.
    gate("no-fp64-fallback", where,
         static_cast<double>(r.ladder_fp64_fallbacks), 0.0,
         !r.fallback_engaged && r.ladder_fp64_fallbacks == 0);
    // Data-movement audit gate: the measured per-rank volume must exceed
    // the lower bound (counting every workspace touch, it cannot be below
    // a valid bound) and stay within a fixed constant factor of it — the
    // implementation moves O(lower bound) data. The constant covers the
    // shared-memory accounting (each operand touch counted, both sides of
    // every copy) across all bench cells; a regression that loses the
    // asymptotics (for example re-reading the trailing matrix per step
    // without blocking) overshoots it by orders of magnitude.
    const bool audit_ok = std::isfinite(r.audit.measured_ratio) &&
                          r.audit.measured_ratio >= 1.0 &&
                          r.audit.measured_ratio <= 80.0;
    if (!gate("data-movement-audit", where, r.audit.measured_ratio, 80.0,
              audit_ok)) {
      std::fprintf(stderr,
                   "error: measured data movement off the bound for %s "
                   "n=%lld (%.3g words/rank vs bound %.3g, ratio %.2f)\n",
                   r.algo.c_str(), static_cast<long long>(r.cell.n),
                   r.audit.measured_words_per_rank, r.audit.lower_bound_words,
                   r.audit.measured_ratio);
    }
    // Instrumentation-overhead gate (acceptance): at the n=2048 P=64 cell
    // the armed run must cost at most 2% over the disarmed run. The gated
    // statistic is the min over interleaved back-to-back (disarmed, armed)
    // pairs: the registry's overhead is deterministic (one TLS add per
    // record), while this container's scheduling noise is several percent
    // between runs minutes apart — a single quiet pair bounds the true
    // overhead from above, where min-per-leg over independent runs does
    // not.
    if (at_gate_cell) {
      gate("metrics-overhead", where, r.metrics_pair_ratio, 1.02,
           r.metrics_pair_ratio <= 1.02);
      // Recovery-overhead gates (ISSUE 8, acceptance): checkpointing at the
      // default interval costs at most 5% and per-step ABFT verification at
      // most 10% over the plain lookahead run. Same min-over-interleaved-
      // pairs statistic as the metrics gate.
      gate("checkpoint-overhead", where, r.ckpt_pair_ratio, 1.05,
           r.ckpt_pair_ratio <= 1.05);
      gate("abft-overhead", where, r.abft_pair_ratio, 1.10,
           r.abft_pair_ratio <= 1.10);
    }
  }
  if (!gates_ok) {
    std::fprintf(stderr, "error: one or more acceptance gates failed\n");
    return 1;
  }

  if (!write_json(out_path, rows)) {
    std::fprintf(stderr, "error: could not write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s (%zu rows)\n", out_path.c_str(), rows.size());
  return 0;
}
