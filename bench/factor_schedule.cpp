// Factorization schedule benchmark: Real-mode wall time plus all four
// modeled times (strict BSP, bounded-overlap timeline, lookahead-pipelined
// timeline, perfect overlap) for COnfLUX and COnfCHOX over a small
// (n, grid) sweep, written to BENCH_factor.json so factorization
// performance is tracked across PRs the same way BENCH_blas.json tracks
// the local kernels.
//
// Each cell runs the schedule three times:
//   - Real mode step-synchronous, timed with a wall clock;
//   - Real mode with lookahead pipelining on the persistent task pool
//     (identical factors by construction; lookahead_wall_s plus the pool's
//     urgent/lazy busy and idle breakdown are recorded, and at the --large
//     n=2048 P=64 cell with >= 2 threads lookahead being no slower than
//     step-synchronous is a hard acceptance gate);
//   - Trace mode with event recording, replayed through sched::Timeline
//     for the model times (identical charges, no matrix data).
//
// Usage:
//   factor_schedule [--out=BENCH_factor.json] [--large] [--serial-baseline]
//                   [--trace=conflux_lu_trace.json] [--reps=1]
//   --large            adds the n=2048, P=64 acceptance cell
//   --serial-baseline  re-times Real mode with 1 OpenMP thread and reports
//                      the rank-parallel speedup per cell
//   --trace=FILE       writes a Chrome trace (about:tracing) of the last
//                      LU cell's bounded-overlap timeline
#include <cmath>
#include <limits>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "factor/confchox.hpp"
#include "factor/conflux_lu.hpp"
#include "factor/mixed.hpp"
#include "sched/chrome_trace.hpp"
#include "sched/event.hpp"
#include "sched/taskpool.hpp"
#include "sched/timeline.hpp"
#include "support/cli.hpp"
#include "support/stopwatch.hpp"
#include "tensor/random_matrix.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

using namespace conflux;

namespace {

struct Cell {
  index_t n;
  int px, py, pz;
  index_t v;
};

struct Row {
  std::string algo;
  Cell cell;
  double real_wall_s = 0.0;
  double serial_wall_s = 0.0;  // 0 when --serial-baseline is off
  double real_gflops = 0.0;    // factorization flops / real_wall_s
  double workspace_peak_words = 0.0;  // Real-mode resident data-path words
  double t_bsp = 0.0;
  double t_timeline = 0.0;
  double t_lookahead = 0.0;  // lookahead-pipelined model time
  double t_overlap = 0.0;
  int threads = 1;
  // Lookahead real-execution record: wall time plus the task pool's
  // busy/idle split over the timed run (la_idle_s ~ threads * wall - busy).
  double lookahead_wall_s = 0.0;
  double la_urgent_busy_s = 0.0;
  double la_lazy_busy_s = 0.0;
  double la_other_busy_s = 0.0;
  double la_idle_s = 0.0;
  // Mixed-precision solve record (LU and Cholesky cells): fp32 factor + fp64
  // iterative refinement vs the all-fp64 direct solve, judged by the same
  // normwise backward error. The acceptance bar (ISSUE 4): refinement reaches
  // the direct-solve backward error within 10x in <= 3 steps.
  int ir_steps = 0;
  double ir_backward_error = 0.0;
  double direct_backward_error = 0.0;
  double fp32_wall_s = 0.0;  // fp32 factorization wall time (same schedule)
  // Degradation-ladder record (ISSUE 6): the solve leg runs through the
  // _ex ladder driver, so fallback engagement is measured, and the healthy
  // gate below asserts it stays at zero on these well-conditioned inputs.
  long long ladder_solves = 0;
  long long ladder_fp64_fallbacks = 0;
  bool fallback_engaged = false;
};

xsim::MachineSpec spec_for(const Cell& c) {
  xsim::MachineSpec spec;  // Piz Daint-like defaults (xsim/machine.hpp)
  spec.num_ranks = c.px * c.py * c.pz;
  spec.memory_words = static_cast<double>(c.pz) * static_cast<double>(c.n) *
                      static_cast<double>(c.n) / static_cast<double>(spec.num_ranks);
  return spec;
}

int max_threads() {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

double best_wall(int reps, const auto& run) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    Stopwatch sw;
    run();
    best = std::min(best, sw.seconds());
  }
  return best;
}

Row run_cell(const std::string& algo, const Cell& c, int reps, bool serial_baseline,
             sched::EventLog* trace_log, xsim::MachineSpec* trace_spec) {
  const grid::Grid3D g(c.px, c.py, c.pz);
  const xsim::MachineSpec spec = spec_for(c);
  factor::FactorOptions opt;
  opt.block_size = c.v;
  const bool lu = algo == "conflux_lu";

  Row row{algo, c};
  row.threads = max_threads();

  // Real mode: actual numerics, wall-clocked. The last rep's factors are
  // kept — the direct-solve baseline below reuses them (the factorization
  // is deterministic, so every rep produces bitwise the same result).
  const MatrixD a = lu ? random_matrix(c.n, c.n, 1) : random_spd_matrix(c.n, 2);
  factor::LuResult lud;
  factor::CholResult chold;
  const auto real_run = [&] {
    xsim::Machine m(spec, xsim::ExecMode::Real);
    if (lu) {
      lud = factor::conflux_lu(m, g, a.view(), opt);
      row.workspace_peak_words = lud.workspace_words;
    } else {
      chold = factor::confchox(m, g, a.view(), opt);
      row.workspace_peak_words = chold.workspace_words;
    }
  };
  row.real_wall_s = best_wall(reps, real_run);
  const double nd = static_cast<double>(c.n);
  const double factor_flops = lu ? 2.0 * nd * nd * nd / 3.0 : nd * nd * nd / 3.0;
  row.real_gflops = factor_flops / row.real_wall_s / 1e9;
#ifdef _OPENMP
  if (serial_baseline) {
    const int saved = omp_get_max_threads();
    omp_set_num_threads(1);
    row.serial_wall_s = best_wall(reps, real_run);
    omp_set_num_threads(saved);
  }
#else
  (void)serial_baseline;
#endif

  // Lookahead leg: same schedule, urgent/lazy tasks pipelined on the
  // persistent pool (bitwise-identical factors — packed_factor_test).
  {
    factor::FactorOptions la_opt = opt;
    la_opt.lookahead = 1;
    sched::TaskPool& pool = sched::TaskPool::instance();
    const auto la_run = [&] {
      xsim::Machine m(spec, xsim::ExecMode::Real);
      if (lu) {
        factor::conflux_lu(m, g, a.view(), la_opt);
      } else {
        factor::confchox(m, g, a.view(), la_opt);
      }
    };
    la_run();  // warm the pool's workers and TLS buffers
    pool.reset_stats();
    row.lookahead_wall_s = best_wall(reps, la_run);
    const sched::TaskPoolStats st = pool.stats();
    // Stats accumulate over all reps; scale to one (best) run for the
    // recorded busy split.
    const double scale = 1.0 / static_cast<double>(reps);
    row.la_urgent_busy_s = st.urgent_busy_s * scale;
    row.la_lazy_busy_s = st.lazy_busy_s * scale;
    row.la_other_busy_s = st.other_busy_s * scale;
    const double busy =
        row.la_urgent_busy_s + row.la_lazy_busy_s + row.la_other_busy_s;
    const double capacity =
        static_cast<double>(row.threads) * row.lookahead_wall_s;
    row.la_idle_s = capacity > busy ? capacity - busy : 0.0;
  }

  // Mixed-precision solve: fp32 factorization (timed with the same
  // best-of-reps harness as the fp64 wall above, so the published ratio
  // compares equal footing) + blocked fp64 refinement over an 8-column RHS
  // panel, against the all-fp64 direct solve on the identical problem.
  {
    const index_t nrhs = 8;
    const MatrixD b0 = random_matrix(c.n, nrhs, 3);
    MatrixF af(c.n, c.n);
    convert<double, float>(a.view(), af.view());
    factor::LuResultF luf;
    factor::CholResultF cholf;
    const auto fp32_run = [&] {
      xsim::Machine mf(spec, xsim::ExecMode::Real);
      if (lu) {
        luf = factor::conflux_lu(mf, g, af.view(), opt);
      } else {
        cholf = factor::confchox(mf, g, af.view(), opt);
      }
    };
    row.fp32_wall_s = best_wall(reps, fp32_run);
    // The solve goes through the degradation-ladder driver with the fp64
    // fallback armed: on these healthy inputs the fp32 + refinement rung
    // must deliver, and the counters prove it (zero-fallbacks gate below).
    factor::reset_mixed_counters();
    MatrixD bx = b0;
    factor::MixedSolveOptions mopt;
    mopt.factor = opt;
    xsim::Machine ms(spec, xsim::ExecMode::Real);
    const factor::MixedSolveReport mrep =
        lu ? factor::conflux_lu_solve_mixed_ex(ms, g, a.view(), bx.view(), mopt)
           : factor::confchox_solve_mixed_ex(ms, g, a.view(), bx.view(), mopt);
    row.ir_steps = mrep.refine.steps;
    row.ir_backward_error = mrep.refine.backward_error;
    row.fallback_engaged = mrep.fp64_fallback;
    const factor::MixedCounters mc = factor::mixed_counters();
    row.ladder_solves = mc.solves;
    row.ladder_fp64_fallbacks = mc.fp64_fallbacks;

    MatrixD bd = b0;
    if (lu) {
      factor::conflux_lu_solve(lud, bd.view());
    } else {
      factor::confchox_solve(chold, bd.view());
    }
    row.direct_backward_error =
        factor::solve_backward_error(a.view(), bd.view(), b0.view());
  }

  // Trace mode with event recording: the three model times.
  xsim::Machine m(spec, xsim::ExecMode::Trace);
  sched::EventLog log;
  {
    sched::ScopedRecord rec(m, log);
    if (lu) {
      factor::conflux_lu_trace(m, g, c.n, opt);
    } else {
      factor::confchox_trace(m, g, c.n, opt);
    }
  }
  const sched::Timeline tl(log, spec);
  row.t_bsp = m.elapsed_time();
  row.t_timeline = tl.modeled_time();
  row.t_lookahead = tl.modeled_time_lookahead();
  row.t_overlap = m.modeled_time_overlap();
  if (lu && trace_log != nullptr) {
    *trace_log = std::move(log);
    *trace_spec = spec;
  }
  return row;
}

void print_row(const Row& r) {
  std::printf(
      "%-11s n=%-5lld grid %dx%dx%d v=%-3lld  wall %.3fs (%.2f GF/s, ws %.2fM words)",
      r.algo.c_str(), static_cast<long long>(r.cell.n), r.cell.px, r.cell.py,
      r.cell.pz, static_cast<long long>(r.cell.v), r.real_wall_s, r.real_gflops,
      r.workspace_peak_words / 1e6);
  if (r.serial_wall_s > 0.0) {
    std::printf(" (1-thread %.3fs, %.2fx)", r.serial_wall_s,
                r.serial_wall_s / r.real_wall_s);
  }
  std::printf(
      "  model BSP %.4fs >= timeline %.4fs >= lookahead %.4fs >= overlap %.4fs\n",
      r.t_bsp, r.t_timeline, r.t_lookahead, r.t_overlap);
  std::printf(
      "            lookahead wall %.3fs (%.2fx of sync) | busy urgent %.3fs"
      " lazy %.3fs other %.3fs idle %.3fs\n",
      r.lookahead_wall_s,
      r.lookahead_wall_s > 0.0 ? r.lookahead_wall_s / r.real_wall_s : 0.0,
      r.la_urgent_busy_s, r.la_lazy_busy_s, r.la_other_busy_s, r.la_idle_s);
  std::printf(
      "            fp32 factor %.3fs (%.2fx) | IR %d steps, berr %.2e vs direct"
      " %.2e | fp64 fallbacks %lld/%lld\n",
      r.fp32_wall_s, r.fp32_wall_s > 0.0 ? r.real_wall_s / r.fp32_wall_s : 0.0,
      r.ir_steps, r.ir_backward_error, r.direct_backward_error,
      r.ladder_fp64_fallbacks, r.ladder_solves);
}

bool write_json(const std::string& path, const std::vector<Row>& rows) {
  std::ofstream out(path);
  out << "[\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "  {\"algo\": \"" << r.algo << "\", \"n\": " << r.cell.n
        << ", \"px\": " << r.cell.px << ", \"py\": " << r.cell.py
        << ", \"pz\": " << r.cell.pz << ", \"v\": " << r.cell.v
        << ", \"real_wall_s\": " << r.real_wall_s
        << ", \"serial_wall_s\": " << r.serial_wall_s
        << ", \"real_gflops\": " << r.real_gflops
        << ", \"workspace_peak_words\": " << r.workspace_peak_words
        << ", \"model_bsp_s\": " << r.t_bsp
        << ", \"model_timeline_s\": " << r.t_timeline
        << ", \"model_lookahead_s\": " << r.t_lookahead
        << ", \"model_overlap_s\": " << r.t_overlap
        << ", \"lookahead_wall_s\": " << r.lookahead_wall_s
        << ", \"la_urgent_busy_s\": " << r.la_urgent_busy_s
        << ", \"la_lazy_busy_s\": " << r.la_lazy_busy_s
        << ", \"la_other_busy_s\": " << r.la_other_busy_s
        << ", \"la_idle_s\": " << r.la_idle_s
        << ", \"fp32_wall_s\": " << r.fp32_wall_s
        << ", \"ir_steps\": " << r.ir_steps
        << ", \"ir_backward_error\": " << r.ir_backward_error
        << ", \"direct_backward_error\": " << r.direct_backward_error
        << ", \"ladder_solves\": " << r.ladder_solves
        << ", \"fp64_fallbacks\": " << r.ladder_fp64_fallbacks
        << ", \"threads\": " << r.threads << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "]\n";
  return out.good();
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const std::string out_path = cli.get_string("out", "BENCH_factor.json");
  const std::string trace_path = cli.get_string("trace", "");
  const bool large = cli.get_flag("large");
  const bool serial_baseline = cli.get_flag("serial-baseline");
  const int reps = static_cast<int>(cli.get_int("reps", 1));
  cli.check_unused();

  std::vector<Cell> cells = {
      {512, 2, 2, 1, 32},
      {512, 2, 2, 2, 32},
      {1024, 4, 4, 2, 32},
      {1024, 2, 2, 4, 32},
  };
  if (large) cells.push_back({2048, 4, 4, 4, 64});  // the n=2048, P=64 cell

  std::vector<Row> rows;
  sched::EventLog last_lu_log;
  xsim::MachineSpec last_lu_spec;
  for (const Cell& c : cells) {
    for (const char* algo : {"conflux_lu", "confchox"}) {
      rows.push_back(run_cell(algo, c, reps, serial_baseline,
                              trace_path.empty() ? nullptr : &last_lu_log,
                              &last_lu_spec));
      print_row(rows.back());
    }
  }

  if (!trace_path.empty() && !last_lu_log.events().empty()) {
    sched::TimelineOptions opt;
    opt.record_slices = true;
    const sched::Timeline tl(last_lu_log, last_lu_spec, opt);
    if (sched::write_chrome_trace_file(trace_path, tl)) {
      std::printf("wrote Chrome trace %s (%zu slices; open in about:tracing)\n",
                  trace_path.c_str(), tl.slices().size());
    } else {
      std::fprintf(stderr, "error: could not write %s\n", trace_path.c_str());
      return 1;
    }
  }

  // Sanity gate for CI's perf-smoke job: a hung clock, NaN time, or NaN
  // model output must fail the run, not silently land in the record.
  for (const Row& r : rows) {
    const bool ok = std::isfinite(r.real_wall_s) && r.real_wall_s > 0.0 &&
                    std::isfinite(r.real_gflops) && std::isfinite(r.t_bsp) &&
                    std::isfinite(r.t_timeline) && std::isfinite(r.t_overlap) &&
                    std::isfinite(r.t_lookahead) &&
                    std::isfinite(r.lookahead_wall_s) &&
                    r.lookahead_wall_s > 0.0 &&
                    std::isfinite(r.workspace_peak_words);
    if (!ok) {
      std::fprintf(stderr, "error: non-finite measurement for %s n=%lld\n",
                   r.algo.c_str(), static_cast<long long>(r.cell.n));
      return 1;
    }
    // Model ordering must hold in the record itself.
    const bool order_ok = r.t_bsp >= r.t_timeline &&
                          r.t_timeline >= r.t_lookahead &&
                          r.t_lookahead >= r.t_overlap;
    if (!order_ok) {
      std::fprintf(stderr,
                   "error: model ordering violated for %s n=%lld\n",
                   r.algo.c_str(), static_cast<long long>(r.cell.n));
      return 1;
    }
    // Lookahead acceptance gate (ISSUE 5): at the n=2048 P=64 cell with at
    // least two host threads, pipelined execution must be no slower than
    // step-synchronous. Both legs run best-of-reps of bitwise-identical
    // arithmetic, so any true regression shows up as a systematic gap; the
    // 5% margin covers OS-scheduler noise when the threads oversubscribe
    // the cores (CI runners, containers).
    if (r.cell.n == 2048 && r.cell.px * r.cell.py * r.cell.pz == 64 &&
        r.threads >= 2 && r.lookahead_wall_s > 1.05 * r.real_wall_s) {
      std::fprintf(stderr,
                   "error: lookahead slower than step-synchronous for %s "
                   "n=%lld (%.3fs vs %.3fs on %d threads)\n",
                   r.algo.c_str(), static_cast<long long>(r.cell.n),
                   r.lookahead_wall_s, r.real_wall_s, r.threads);
      return 1;
    }
    // Mixed-precision acceptance gate (ISSUE 4): the refined solve must
    // reach the fp64 direct solve's backward error within 10x in <= 3 steps
    // — or have converged by the dsgesv-style 2*sqrt(n)*eps criterion the
    // refinement loop itself targets (it stops there by design, so when
    // that tolerance sits above 10x an unusually good direct solve, the
    // stricter bar would punish legitimate early convergence).
    const double dsgesv_tol = 2.0 * std::sqrt(static_cast<double>(r.cell.n)) *
                              std::numeric_limits<double>::epsilon();
    const bool ir_ok = r.ir_steps <= 3 && std::isfinite(r.ir_backward_error) &&
                       (r.ir_backward_error <= 10.0 * r.direct_backward_error ||
                        r.ir_backward_error <= dsgesv_tol);
    if (!ir_ok) {
      std::fprintf(stderr,
                   "error: mixed-precision solve off the bar for %s n=%lld "
                   "(steps %d, berr %.3e vs direct %.3e)\n",
                   r.algo.c_str(), static_cast<long long>(r.cell.n), r.ir_steps,
                   r.ir_backward_error, r.direct_backward_error);
      return 1;
    }
    // Degradation-ladder gate (ISSUE 6): the bench inputs are healthy and
    // well conditioned, so the fp64 rung engaging would mean either a
    // numerics regression or an over-eager breakdown classifier.
    if (r.fallback_engaged || r.ladder_fp64_fallbacks != 0) {
      std::fprintf(stderr,
                   "error: fp64 fallback engaged on a healthy input for %s "
                   "n=%lld (%lld of %lld solves)\n",
                   r.algo.c_str(), static_cast<long long>(r.cell.n),
                   r.ladder_fp64_fallbacks, r.ladder_solves);
      return 1;
    }
  }

  if (!write_json(out_path, rows)) {
    std::fprintf(stderr, "error: could not write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s (%zu rows)\n", out_path.c_str(), rows.size());
  return 0;
}
