// Section 6 reproduction: the DAAP lower-bound engine re-derives the
// parallel I/O lower bounds of matmul, LU and Cholesky numerically (chi(X),
// X0, rho per statement) and prints them against the paper's closed forms.
#include <cmath>
#include <iostream>

#include "daap/bounds.hpp"
#include "daap/statement.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

namespace daap = conflux::daap;

int main(int argc, char** argv) {
  const conflux::Cli cli(argc, argv);
  const double n = cli.get_double("n", 16384.0);
  const double p = cli.get_double("p", 1024.0);
  const double mem = cli.get_double("m", 1 << 22);
  cli.check_unused();

  {
    conflux::TextTable table("Per-statement analysis (Section 6), M = " +
                             std::to_string(static_cast<long long>(mem)));
    table.set_header({"statement", "X0", "X0/M", "rho", "paper_rho", "lemma6"});
    const auto lu = daap::lu_kernel(n);
    const auto chol = daap::cholesky_kernel(n);
    const auto mm = daap::matmul_kernel(n);
    const auto row = [&](const daap::StatementSpec& s, double verts,
                         double paper_rho) {
      const auto b = daap::derive_statement_bound(s, verts, mem);
      table.add_row({s.name, b.x0, b.x0 / mem, b.rho, paper_rho,
                     std::string(b.lemma6_capped ? "capped" : "-")});
    };
    row(mm.program.statements[0], n * n * n, std::sqrt(mem) / 2.0);
    row(lu.program.statements[0], lu.statement_vertices[0], 1.0);
    row(lu.program.statements[1], lu.statement_vertices[1], std::sqrt(mem) / 2.0);
    row(chol.program.statements[0], chol.statement_vertices[0], 1.0);
    row(chol.program.statements[1], chol.statement_vertices[1], 1.0);
    row(chol.program.statements[2], chol.statement_vertices[2], std::sqrt(mem) / 2.0);
    table.print(std::cout);
    std::cout << "(paper: X0 = 3M and rho = sqrt(M)/2 for the update statements;\n"
                 " rho <= 1 by Lemma 6 for the scale/sqrt statements)\n\n";
  }

  {
    conflux::TextTable table("Parallel I/O lower bounds [words/rank]");
    table.set_header({"kernel", "engine_bound", "closed_form", "err_%"});
    const auto row = [&](const char* name, const daap::KernelInstance& k,
                         double closed) {
      const double engine = daap::derive_program_bound(k, p, mem).q_parallel;
      table.add_row({std::string(name), engine, closed,
                     100.0 * (engine - closed) / closed});
    };
    row("matmul", daap::matmul_kernel(n),
        daap::matmul_lower_bound_closed_form(n, p, mem));
    row("LU", daap::lu_kernel(n), daap::lu_lower_bound_closed_form(n, p, mem));
    row("Cholesky", daap::cholesky_kernel(n),
        daap::cholesky_lower_bound_closed_form(n, p, mem));
    table.print(std::cout);
    std::cout << "(paper: Q_LU >= 2N^3/(3P sqrt(M)) + N^2/(2P),\n"
                 "        Q_chol >= N^3/(3P sqrt(M)) + N^2/(2P) + N/P)\n";
  }
  return 0;
}
