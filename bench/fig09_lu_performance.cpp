// Figure 9: achieved % of machine peak for LU — strong scaling at
// N = 2^17 and N = 2^14, and weak scaling at N = 8192 * sqrt(P).
#include <cmath>
#include <functional>
#include <iostream>

#include "bench_common.hpp"
#include "support/cli.hpp"

namespace bench = conflux::bench;
using conflux::index_t;

namespace {

void scaling_table(const std::string& title, int max_p,
                   const std::function<index_t(int)>& n_of_p) {
  conflux::TextTable table(title);
  table.set_header({"nodes", "P", "N", "COnfLUX_%", "MKL_%", "SLATE_%", "CANDMC_%"});
  for (int p = 8; p <= max_p; p *= 2) {
    const index_t n = n_of_p(p);
    if (!bench::input_fits(n, p)) continue;
    const auto cell = [&](bench::Impl impl) {
      return 100.0 * bench::run_lu(impl, n, p).peak_fraction;
    };
    table.add_row({static_cast<long long>(p / 2), static_cast<long long>(p),
                   static_cast<long long>(n), cell(bench::Impl::Conflux),
                   cell(bench::Impl::Mkl), cell(bench::Impl::Slate),
                   cell(bench::Impl::Candmc)});
  }
  table.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const conflux::Cli cli(argc, argv);
  const int max_p = static_cast<int>(cli.get_int("max_p", 1024));
  cli.check_unused();

  scaling_table("Figure 9a: LU strong scaling, N = 131072 (% of peak)", max_p,
                [](int) { return index_t{131072}; });
  scaling_table("Figure 9b: LU strong scaling, N = 16384 (% of peak)", max_p,
                [](int) { return index_t{16384}; });
  scaling_table("Figure 9c: LU weak scaling, N = 8192*sqrt(P) (% of peak)", max_p,
                [](int p) {
                  return static_cast<index_t>(
                      std::llround(8192.0 * std::sqrt(static_cast<double>(p))));
                });
  std::cout << "Paper shape check: COnfLUX leads in nearly all cells; all\n"
               "implementations decay in strong scaling as local domains shrink\n"
               "(latency-bound below N^2/P ~ 2^27).\n";
  return 0;
}
