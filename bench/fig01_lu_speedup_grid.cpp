// Figure 1: LU runtime speedup of COnfLUX vs the fastest state-of-the-art
// library (MKL / SLATE / CANDMC) over the (nodes, N) grid, plus COnfLUX's
// achieved fraction of machine peak. Cells where the input does not fit in
// aggregate memory, or where every library lands below 3% of peak, are
// skipped exactly as in the paper.
#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "support/cli.hpp"

namespace bench = conflux::bench;
using conflux::index_t;

int main(int argc, char** argv) {
  const conflux::Cli cli(argc, argv);
  const index_t max_n = cli.get_int("max_n", 1 << 17);
  const int max_nodes = static_cast<int>(cli.get_int("max_nodes", 512));
  cli.check_unused();

  conflux::TextTable table(
      "Figure 1: COnfLUX speedup vs fastest of {MKL (M), SLATE (S), CANDMC (C)}\n"
      "(time from the alpha-beta-gamma model over traced schedules; 2 ranks/node)");
  table.set_header({"N", "nodes", "P", "speedup", "second_best", "conflux_%peak"});

  for (index_t n = 2048; n <= max_n; n *= 2) {
    for (int nodes = 2; nodes <= max_nodes; nodes *= 2) {
      const int p = 2 * nodes;
      if (!bench::input_fits(n, p)) continue;
      const bench::RunResult conflux = bench::run_lu(bench::Impl::Conflux, n, p);
      double best_other = 1e300;
      const char* best_name = "?";
      double best_peak = 0.0;
      for (const auto impl :
           {bench::Impl::Mkl, bench::Impl::Slate, bench::Impl::Candmc}) {
        const bench::RunResult r = bench::run_lu(impl, n, p);
        if (r.elapsed_s < best_other) {
          best_other = r.elapsed_s;
          best_name = bench::impl_name(impl);
          best_peak = r.peak_fraction;
        }
      }
      // Discard cells where nobody reaches 3% of peak (paper's cutoff).
      if (conflux.peak_fraction < 0.03 && best_peak < 0.03) continue;
      table.add_row({static_cast<long long>(n), static_cast<long long>(nodes),
                     static_cast<long long>(p), best_other / conflux.elapsed_s,
                     std::string(best_name), 100.0 * conflux.peak_fraction});
    }
  }
  table.print(std::cout);
  return 0;
}
