// Figure 8a: communication volume per node for varying node counts at fixed
// N = 16384 — measured (traced) volumes for COnfLUX, MKL, SLATE, CANDMC next
// to the Table 2 model lines (leading factors, scaled to bytes like the
// paper's plot; 2 ranks per node).
#include <iostream>

#include "bench_common.hpp"
#include "support/cli.hpp"

namespace bench = conflux::bench;
using conflux::index_t;
namespace models = conflux::models;

int main(int argc, char** argv) {
  const conflux::Cli cli(argc, argv);
  const index_t n = cli.get_int("n", 16384);
  const int max_p = static_cast<int>(cli.get_int("max_p", 1024));
  cli.check_unused();

  conflux::TextTable table(
      "Figure 8a: communication volume per node [MB], N = " + std::to_string(n));
  table.set_header({"nodes", "P", "COnfLUX", "MKL", "SLATE", "CANDMC",
                    "model_conflux", "model_2d", "model_candmc"});
  const double to_mb = 2.0 * 8.0 / 1e6;  // words/rank -> bytes/node
  for (int p = 8; p <= max_p; p *= 2) {
    const double mem =
        models::paper_memory_words(static_cast<double>(n), static_cast<double>(p));
    const auto g2 = conflux::grid::choose_grid_2d(p);
    table.add_row(
        {static_cast<long long>(p / 2), static_cast<long long>(p),
         bench::run_lu(bench::Impl::Conflux, n, p).avg_volume_words * to_mb,
         bench::run_lu(bench::Impl::Mkl, n, p).avg_volume_words * to_mb,
         bench::run_lu(bench::Impl::Slate, n, p).avg_volume_words * to_mb,
         bench::run_lu(bench::Impl::Candmc, n, p).avg_volume_words * to_mb,
         models::conflux_volume(static_cast<double>(n), p, mem) * to_mb,
         models::mkl_lu_volume(static_cast<double>(n), g2) * to_mb,
         models::candmc_lu_volume(static_cast<double>(n), p, mem) * to_mb});
  }
  table.print(std::cout);
  std::cout << "\nPaper shape check: COnfLUX lowest at large P; CANDMC above the\n"
               "2D libraries at all measured scales; 2D flattens as ~N^2/sqrt(P).\n";
  return 0;
}
