// Ablation: the block size v (Section 7.2's tunable). Small v shrinks the
// O(N v) A00-broadcast term and the per-step latency chain granularity but
// raises the step count; large v amortizes steps but bloats the broadcast
// and tournament payloads. The paper ties v to the replication depth
// (v = a * c) and tunes a to the hardware; this sweep shows the simulator's
// volume/time trade-off and where the default lands.
#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "blas/blas.hpp"
#include "blas/tuning.hpp"
#include "support/cli.hpp"
#include "support/stopwatch.hpp"
#include "tensor/random_matrix.hpp"

namespace bench = conflux::bench;
namespace factor = conflux::factor;
namespace xblas = conflux::xblas;
using conflux::index_t;

namespace {

// Companion ablation for the *local* blocking: sweep the xblas cache-block
// sizes (Section "BLAS substrate" of README.md) on a real gemm and report
// GF/s, so the simulator block-size table above and the local-compute
// tuning can be read side by side.
void sweep_local_blas(index_t n) {
  conflux::TextTable table("Ablation: xblas gemm cache blocks (n = " +
                           std::to_string(n) + ", 1 thread)");
  table.set_header({"mc", "kc", "gflops", "is_default"});
  const xblas::Tuning saved = xblas::tuning();
  xblas::tuning().threads = 1;
  const conflux::MatrixD a = conflux::random_matrix(n, n, 1);
  const conflux::MatrixD b = conflux::random_matrix(n, n, 2);
  conflux::MatrixD c(n, n, 0.0);
  const double flops = xblas::gemm_flops(n, n, n);
  for (const index_t mc : {64, 128, 192}) {
    for (const index_t kc : {128, 256, 512}) {
      xblas::tuning().mc = mc;
      xblas::tuning().kc = kc;
      double best = 1e300;
      for (int rep = 0; rep < 3; ++rep) {
        conflux::Stopwatch sw;
        xblas::gemm(xblas::Trans::None, xblas::Trans::None, 1.0, a.view(),
                    b.view(), 0.0, c.view());
        best = std::min(best, sw.seconds());
      }
      table.add_row({static_cast<long long>(mc), static_cast<long long>(kc),
                     flops / best * 1e-9,
                     std::string(mc == saved.mc && kc == saved.kc ? "<- default"
                                                                  : "")});
    }
  }
  xblas::tuning() = saved;
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const conflux::Cli cli(argc, argv);
  const index_t n = cli.get_int("n", 16384);
  const int p = static_cast<int>(cli.get_int("p", 256));
  const index_t blas_n = cli.get_int("blas-n", 768);
  const bool skip_blas = cli.get_flag("no-blas-sweep");
  cli.check_unused();

  const double mem = conflux::models::paper_memory_words(static_cast<double>(n),
                                                         static_cast<double>(p));
  const conflux::grid::Grid3D g = conflux::models::best_conflux_grid(n, p, mem);
  const index_t vdefault = factor::default_block_size(n, g);

  conflux::TextTable table("Ablation: COnfLUX block size v (N = " + std::to_string(n) +
                           ", P = " + std::to_string(p) + ", grid " +
                           std::to_string(g.px()) + "x" + std::to_string(g.py()) +
                           "x" + std::to_string(g.pz()) + ")");
  table.set_header({"v", "steps", "volume_words_per_rank", "modeled_time_s",
                    "is_default"});
  for (index_t v = g.pz(); v <= 1024; v *= 2) {
    if (v % g.pz() != 0 || v > n) continue;
    conflux::xsim::Machine m(bench::piz_daint_spec(p, mem),
                             conflux::xsim::ExecMode::Trace);
    factor::FactorOptions opt;
    opt.block_size = v;
    factor::conflux_lu_trace(m, g, n, opt);
    table.add_row({static_cast<long long>(v),
                   static_cast<long long>((n + v - 1) / v), m.avg_comm_volume(),
                   m.modeled_time_overlap(),
                   std::string(v == vdefault ? "<- default" : "")});
  }
  table.print(std::cout);
  std::cout << "\nDesign-choice check: volume is flat-to-rising in v (the O(Nv)\n"
               "A00 broadcasts); time has a shallow optimum where the per-step\n"
               "latency chain stops dominating — the default sits near it.\n\n";

  if (!skip_blas) sweep_local_blas(blas_n);
  return 0;
}
