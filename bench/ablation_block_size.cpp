// Ablation: the block size v (Section 7.2's tunable). Small v shrinks the
// O(N v) A00-broadcast term and the per-step latency chain granularity but
// raises the step count; large v amortizes steps but bloats the broadcast
// and tournament payloads. The paper ties v to the replication depth
// (v = a * c) and tunes a to the hardware; this sweep shows the simulator's
// volume/time trade-off and where the default lands.
#include <iostream>

#include "bench_common.hpp"
#include "support/cli.hpp"

namespace bench = conflux::bench;
namespace factor = conflux::factor;
using conflux::index_t;

int main(int argc, char** argv) {
  const conflux::Cli cli(argc, argv);
  const index_t n = cli.get_int("n", 16384);
  const int p = static_cast<int>(cli.get_int("p", 256));
  cli.check_unused();

  const double mem = conflux::models::paper_memory_words(static_cast<double>(n),
                                                         static_cast<double>(p));
  const conflux::grid::Grid3D g = conflux::models::best_conflux_grid(n, p, mem);
  const index_t vdefault = factor::default_block_size(n, g);

  conflux::TextTable table("Ablation: COnfLUX block size v (N = " + std::to_string(n) +
                           ", P = " + std::to_string(p) + ", grid " +
                           std::to_string(g.px()) + "x" + std::to_string(g.py()) +
                           "x" + std::to_string(g.pz()) + ")");
  table.set_header({"v", "steps", "volume_words_per_rank", "modeled_time_s",
                    "is_default"});
  for (index_t v = g.pz(); v <= 1024; v *= 2) {
    if (v % g.pz() != 0 || v > n) continue;
    conflux::xsim::Machine m(bench::piz_daint_spec(p, mem),
                             conflux::xsim::ExecMode::Trace);
    factor::FactorOptions opt;
    opt.block_size = v;
    factor::conflux_lu_trace(m, g, n, opt);
    table.add_row({static_cast<long long>(v),
                   static_cast<long long>((n + v - 1) / v), m.avg_comm_volume(),
                   m.modeled_time_overlap(),
                   std::string(v == vdefault ? "<- default" : "")});
  }
  table.print(std::cout);
  std::cout << "\nDesign-choice check: volume is flat-to-rising in v (the O(Nv)\n"
               "A00 broadcasts); time has a shallow optimum where the per-step\n"
               "latency chain stops dominating — the default sits near it.\n";
  return 0;
}
