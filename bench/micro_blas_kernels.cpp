// Local-kernel throughput microbenchmarks for the level-3 BLAS substrate.
//
// Self-timed (no external benchmark dependency) so the numbers land in a
// machine-readable JSON file: each kernel x shape row records GF/s and the
// best wall time, written to --out=BENCH_blas.json for later PRs to track
// the perf trajectory. The seed repository's original gemm kernel (coarse
// cache blocking, per-element zero-check branch, no packing) is embedded
// here verbatim as `seed` so the speedup of the packed register-tiled
// rebuild stays measurable forever.
//
// Usage:
//   micro_blas_kernels [--out=BENCH_blas.json] [--threads=1] [--large]
//                      [--sweep] [--min-time=0.3]
//   --large  adds n = 2048 shapes
//   --sweep  additionally sweeps the (mc, kc, nc) cache-block tuning for
//            gemm at the largest shape and reports the best combination
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <utility>
#include <fstream>
#include <string>
#include <vector>

#include "blas/blas.hpp"
#include "blas/lapack.hpp"
#include "blas/tuning.hpp"
#include "support/json.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif
#include "support/cli.hpp"
#include "support/stopwatch.hpp"
#include "tensor/random_matrix.hpp"

namespace xblas = conflux::xblas;
using conflux::ConstViewD;
using conflux::index_t;
using conflux::MatrixD;
using conflux::ViewD;

namespace {

// ---- seed-kernel baseline (the pre-rebuild gemm, kept for comparison) ----

constexpr index_t kSeedMC = 64;
constexpr index_t kSeedKC = 64;
constexpr index_t kSeedNC = 256;

void seed_kernel_nn(index_t mc, index_t nc, index_t kc, const double* a,
                    index_t lda, const double* b, index_t ldb, double* c,
                    index_t ldc) {
  for (index_t i = 0; i < mc; ++i) {
    for (index_t p = 0; p < kc; ++p) {
      const double aip = a[i * lda + p];
      if (aip == 0.0) continue;
      const double* brow = b + p * ldb;
      double* crow = c + i * ldc;
      for (index_t j = 0; j < nc; ++j) crow[j] += aip * brow[j];
    }
  }
}

void seed_gemm(double alpha, ConstViewD a, ConstViewD b, double beta, ViewD c) {
  const index_t m = c.rows();
  const index_t n = c.cols();
  const index_t k = a.cols();
  if (beta == 0.0) {
    for (index_t i = 0; i < m; ++i) {
      for (index_t j = 0; j < n; ++j) c(i, j) = 0.0;
    }
  } else if (beta != 1.0) {
    for (index_t i = 0; i < m; ++i) {
      for (index_t j = 0; j < n; ++j) c(i, j) *= beta;
    }
  }
  std::vector<double> ablock(static_cast<std::size_t>(kSeedMC * kSeedKC));
  for (index_t jc = 0; jc < n; jc += kSeedNC) {
    const index_t nc = std::min(kSeedNC, n - jc);
    for (index_t pc = 0; pc < k; pc += kSeedKC) {
      const index_t kc = std::min(kSeedKC, k - pc);
      for (index_t ic = 0; ic < m; ic += kSeedMC) {
        const index_t mc = std::min(kSeedMC, m - ic);
        for (index_t i = 0; i < mc; ++i) {
          const double* src = a.data() + (ic + i) * a.ld() + pc;
          double* dst = ablock.data() + i * kc;
          for (index_t p = 0; p < kc; ++p) dst[p] = alpha * src[p];
        }
        seed_kernel_nn(mc, nc, kc, ablock.data(), kc, b.data() + pc * b.ld() + jc,
                       b.ld(), c.data() + ic * c.ld() + jc, c.ld());
      }
    }
  }
}

// ---- timing harness -------------------------------------------------------

struct Result {
  std::string kernel;
  index_t n;
  double gflops;
  double seconds;  // best single-run wall time
  int reps;
};

// Thread count the whole run was measured with; recorded per JSON row so
// the cross-PR perf trajectory never mixes thread scaling with kernel
// quality (the embedded seed kernel is always serial).
int g_threads = 1;

// Run fn repeatedly (after one warmup) until min_time total or min 3 reps;
// report the best run. fn performs one run and returns the seconds of the
// timed section only, so kernels that must restore their input each rep
// (trsm/getrf/potrf) keep the O(n^2) copy out of the measurement.
template <typename Fn>
Result time_kernel(const std::string& name, index_t n, double flops, Fn&& fn,
                   double min_time) {
  fn();  // warmup
  double best = 1e300;
  double total = 0.0;
  int reps = 0;
  while (total < min_time || reps < 3) {
    const double s = fn();
    best = std::min(best, s);
    total += s;
    ++reps;
  }
  return Result{name, n, flops / best * 1e-9, best, reps};
}

// Wrap an untimed setup step and a timed kernel run.
template <typename Setup, typename Kernel>
auto timed_run(Setup&& setup, Kernel&& kernel) {
  return [setup, kernel]() {
    setup();
    conflux::Stopwatch sw;
    kernel();
    return sw.seconds();
  };
}

template <typename Kernel>
auto timed_run(Kernel&& kernel) {
  return timed_run([] {}, std::forward<Kernel>(kernel));
}

void print_result(const Result& r) {
  std::printf("%-12s n=%-5lld %8.2f GF/s  (best %.4fs over %d reps)\n",
              r.kernel.c_str(), static_cast<long long>(r.n), r.gflops,
              r.seconds, r.reps);
}

bool write_json(const std::string& path, const std::vector<Result>& results) {
  std::ofstream out(path);
  conflux::json::Writer w(out);
  w.begin_array();
  for (const Result& r : results) {
    w.begin_object();
    w.field("kernel", std::string_view(r.kernel));
    w.field("n", static_cast<long long>(r.n));
    w.field("gflops", r.gflops);
    w.field("best_seconds", r.seconds);
    w.field("reps", r.reps);
    w.field("threads", g_threads);
    w.end_object();
  }
  w.end_array();
  out << "\n";
  return out.good();
}

double find_gflops(const std::vector<Result>& results, const std::string& kernel,
                   index_t n) {
  for (const Result& r : results) {
    if (r.kernel == kernel && r.n == n) return r.gflops;
  }
  return 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const conflux::Cli cli(argc, argv);
  const std::string out_path = cli.get_string("out", "BENCH_blas.json");
  // Default to 1 thread so kernel-quality numbers are comparable across
  // machines, but let XBLAS_THREADS (already folded into tuning()) win when
  // the flag is not given explicitly. 0 means "library default", which is
  // resolved to the real OpenMP thread count below so the JSON rows and the
  // speedup-vs-seed line (the seed kernel is always serial) stay honest.
  const int env_threads =
      std::getenv("XBLAS_THREADS") ? xblas::tuning().threads : 1;
  int threads = static_cast<int>(cli.get_int("threads", env_threads));
  if (threads == 0) {
#ifdef _OPENMP
    threads = omp_get_max_threads();
#else
    threads = 1;
#endif
  }
  const double min_time = cli.get_double("min-time", 0.3);
  const bool large = cli.get_flag("large");
  const bool sweep = cli.get_flag("sweep");
  cli.check_unused();

  xblas::tuning().threads = threads;
  g_threads = threads;
  std::vector<index_t> shapes = {256, 512, 1024};
  if (large) shapes.push_back(2048);
  const index_t nmax = shapes.back();

  std::vector<Result> results;
  for (const index_t n : shapes) {
    const MatrixD a = conflux::random_matrix(n, n, 1);
    const MatrixD b = conflux::random_matrix(n, n, 2);
    MatrixD c(n, n, 0.0);
    const double gemm_fl = xblas::gemm_flops(n, n, n);

    results.push_back(time_kernel("gemm_seed", n, gemm_fl, timed_run([&] {
      seed_gemm(1.0, a.view(), b.view(), 0.0, c.view());
    }), min_time));
    print_result(results.back());

    results.push_back(time_kernel("gemm", n, gemm_fl, timed_run([&] {
      xblas::gemm(xblas::Trans::None, xblas::Trans::None, 1.0, a.view(),
                  b.view(), 0.0, c.view());
    }), min_time));
    print_result(results.back());

    // syrk touches only the triangle: half the gemm flops.
    results.push_back(time_kernel("syrk", n, gemm_fl / 2.0, timed_run([&] {
      xblas::syrk(xblas::UpLo::Lower, xblas::Trans::None, 1.0, a.view(), 0.0,
                  c.view());
    }), min_time));
    print_result(results.back());

    results.push_back(time_kernel("gemmt", n, gemm_fl / 2.0, timed_run([&] {
      xblas::gemmt(xblas::UpLo::Lower, xblas::Trans::None, xblas::Trans::None,
                   1.0, a.view(), b.view(), 0.0, c.view());
    }), min_time));
    print_result(results.back());

    MatrixD t = conflux::random_matrix(n, n, 3);
    for (index_t i = 0; i < n; ++i) t(i, i) += 4.0;
    MatrixD x(n, n, 0.0);
    results.push_back(time_kernel(
        "trsm", n, xblas::trsm_flops(n, n, xblas::Side::Left),
        timed_run([&] { conflux::copy<double>(b.view(), x.view()); },
                  [&] {
                    xblas::trsm(xblas::Side::Left, xblas::UpLo::Lower,
                                xblas::Trans::None, xblas::Diag::NonUnit, 1.0,
                                t.view(), x.view());
                  }),
        min_time));
    print_result(results.back());

    // fp32 rows: same shapes, converted inputs. The fp32/fp64 gemm ratio at
    // the largest shape is the throughput half of the mixed-precision story
    // (the other half, refinement convergence, lives in BENCH_factor.json).
    conflux::MatrixF af(n, n), bf(n, n), cf(n, n, 0.0f);
    conflux::convert<double, float>(a.view(), af.view());
    conflux::convert<double, float>(b.view(), bf.view());
    results.push_back(time_kernel("gemm_f32", n, gemm_fl, timed_run([&] {
      xblas::gemm(xblas::Trans::None, xblas::Trans::None, 1.0f, af.view(),
                  bf.view(), 0.0f, cf.view());
    }), min_time));
    print_result(results.back());

    conflux::MatrixF tf(n, n), xf(n, n, 0.0f);
    conflux::convert<double, float>(t.view(), tf.view());
    results.push_back(time_kernel(
        "trsm_f32", n, xblas::trsm_flops(n, n, xblas::Side::Left),
        timed_run([&] { conflux::convert<double, float>(b.view(), xf.view()); },
                  [&] {
                    xblas::trsm(xblas::Side::Left, xblas::UpLo::Lower,
                                xblas::Trans::None, xblas::Diag::NonUnit, 1.0f,
                                tf.view(), xf.view());
                  }),
        min_time));
    print_result(results.back());

    MatrixD lu(n, n);
    std::vector<index_t> ipiv;
    results.push_back(time_kernel(
        "getrf", n, 2.0 * n * n * n / 3.0,
        timed_run([&] { conflux::copy<double>(a.view(), lu.view()); },
                  [&] { xblas::getrf(lu.view(), ipiv); }),
        min_time));
    print_result(results.back());

    const MatrixD spd = conflux::random_spd_matrix(n, 6);
    MatrixD ch(n, n);
    results.push_back(time_kernel(
        "potrf", n, 1.0 * n * n * n / 3.0,
        timed_run([&] { conflux::copy<double>(spd.view(), ch.view()); },
                  [&] { xblas::potrf(ch.view()); }),
        min_time));
    print_result(results.back());
  }

  if (sweep) {
    std::printf("\nCache-block sweep (gemm, n=%lld):\n",
                static_cast<long long>(nmax));
    const MatrixD a = conflux::random_matrix(nmax, nmax, 1);
    const MatrixD b = conflux::random_matrix(nmax, nmax, 2);
    MatrixD c(nmax, nmax, 0.0);
    const xblas::Tuning saved = xblas::tuning();
    double best_gf = 0.0;
    xblas::Tuning best = saved;
    for (const index_t mc : {64, 96, 128, 192, 256}) {
      for (const index_t kc : {128, 256, 384, 512}) {
        for (const index_t nc : {2048, 4096}) {
          xblas::tuning().mc = mc;
          xblas::tuning().kc = kc;
          xblas::tuning().nc = nc;
          Result r = time_kernel(
              "gemm", nmax, xblas::gemm_flops(nmax, nmax, nmax),
              timed_run([&] {
                xblas::gemm(xblas::Trans::None, xblas::Trans::None, 1.0,
                            a.view(), b.view(), 0.0, c.view());
              }),
              std::min(min_time, 0.15));
          std::printf("  mc=%-4lld kc=%-4lld nc=%-5lld %8.2f GF/s\n",
                      static_cast<long long>(mc), static_cast<long long>(kc),
                      static_cast<long long>(nc), r.gflops);
          r.kernel = "gemm_sweep_mc" + std::to_string(mc) + "_kc" +
                     std::to_string(kc) + "_nc" + std::to_string(nc);
          results.push_back(r);
          if (r.gflops > best_gf) {
            best_gf = r.gflops;
            best = xblas::tuning();
          }
        }
      }
    }
    xblas::tuning() = saved;
    std::printf("  best: mc=%lld kc=%lld nc=%lld at %.2f GF/s\n",
                static_cast<long long>(best.mc), static_cast<long long>(best.kc),
                static_cast<long long>(best.nc), best_gf);
  }

  const double seed_gf = find_gflops(results, "gemm_seed", nmax);
  const double gemm_gf = find_gflops(results, "gemm", nmax);
  const double syrk_gf = find_gflops(results, "syrk", nmax);
  const double trsm_gf = find_gflops(results, "trsm", nmax);
  const double gemm_f32_gf = find_gflops(results, "gemm_f32", nmax);
  if (seed_gf > 0.0 && gemm_gf > 0.0) {
    std::printf("\ngemm speedup vs seed kernel @ n=%lld: %.2fx\n",
                static_cast<long long>(nmax), gemm_gf / seed_gf);
    std::printf("syrk/gemm throughput ratio: %.2f   trsm/gemm: %.2f\n",
                syrk_gf / gemm_gf, trsm_gf / gemm_gf);
    std::printf("fp32/fp64 gemm throughput ratio: %.2fx\n", gemm_f32_gf / gemm_gf);
  }

  if (!write_json(out_path, results)) {
    std::fprintf(stderr, "error: could not write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s (%zu rows)\n", out_path.c_str(), results.size());
  return 0;
}
