// Local-kernel throughput microbenchmarks for the level-3 BLAS substrate.
//
// Self-timed (no external benchmark dependency) so the numbers land in a
// machine-readable JSON file: each kernel x shape row records GF/s and the
// best wall time, written to --out=BENCH_blas.json for later PRs to track
// the perf trajectory. The seed repository's original gemm kernel (coarse
// cache blocking, per-element zero-check branch, no packing) is embedded
// here verbatim as `seed` so the speedup of the packed register-tiled
// rebuild stays measurable forever.
//
// Usage:
//   micro_blas_kernels [--out=BENCH_blas.json] [--threads=1] [--large]
//                      [--sweep] [--min-time=0.3]
//                      [--autotune] [--budget=60] [--require-tuning-source=SRC]
//   --large     adds n = 2048 shapes
//   --sweep     additionally sweeps the (mc, kc, nc) cache-block tuning for
//               gemm at the largest shape and reports the best combination
//   --autotune  run the install-time autotuner (src/blas/autotune.hpp) for
//               the active ISA and persist the winners to the tuning file
//               (XBLAS_TUNING_FILE or ~/.cache/conflux/tuning.json), then
//               exit. --budget caps its wall-clock seconds.
//   --require-tuning-source=default|file|env
//               exit nonzero unless this process's Tuning::detect() resolved
//               from the given layer — CI uses it to prove a persisted
//               tuning file round-trips into a fresh process.
//
// Every row records the measured ISA, the tuning source, and git describe;
// per-ISA gemm rows (`gemm_isa_*`) cover each kernel the host can run, and
// the dispatched-vs-portable fp64 gate fails the run (and CI) if runtime
// dispatch ever picks a slower kernel than the portable baseline.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cmath>
#include <utility>
#include <fstream>
#include <string>
#include <vector>

#include "blas/autotune.hpp"
#include "blas/blas.hpp"
#include "blas/lapack.hpp"
#include "blas/microkernel.hpp"
#include "blas/tuning.hpp"
#include "support/buildinfo.hpp"
#include "support/json.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif
#include "support/cli.hpp"
#include "support/stopwatch.hpp"
#include "tensor/random_matrix.hpp"

namespace xblas = conflux::xblas;
using conflux::ConstViewD;
using conflux::index_t;
using conflux::MatrixD;
using conflux::ViewD;

namespace {

// ---- seed-kernel baseline (the pre-rebuild gemm, kept for comparison) ----

constexpr index_t kSeedMC = 64;
constexpr index_t kSeedKC = 64;
constexpr index_t kSeedNC = 256;

void seed_kernel_nn(index_t mc, index_t nc, index_t kc, const double* a,
                    index_t lda, const double* b, index_t ldb, double* c,
                    index_t ldc) {
  for (index_t i = 0; i < mc; ++i) {
    for (index_t p = 0; p < kc; ++p) {
      const double aip = a[i * lda + p];
      if (aip == 0.0) continue;
      const double* brow = b + p * ldb;
      double* crow = c + i * ldc;
      for (index_t j = 0; j < nc; ++j) crow[j] += aip * brow[j];
    }
  }
}

void seed_gemm(double alpha, ConstViewD a, ConstViewD b, double beta, ViewD c) {
  const index_t m = c.rows();
  const index_t n = c.cols();
  const index_t k = a.cols();
  if (beta == 0.0) {
    for (index_t i = 0; i < m; ++i) {
      for (index_t j = 0; j < n; ++j) c(i, j) = 0.0;
    }
  } else if (beta != 1.0) {
    for (index_t i = 0; i < m; ++i) {
      for (index_t j = 0; j < n; ++j) c(i, j) *= beta;
    }
  }
  std::vector<double> ablock(static_cast<std::size_t>(kSeedMC * kSeedKC));
  for (index_t jc = 0; jc < n; jc += kSeedNC) {
    const index_t nc = std::min(kSeedNC, n - jc);
    for (index_t pc = 0; pc < k; pc += kSeedKC) {
      const index_t kc = std::min(kSeedKC, k - pc);
      for (index_t ic = 0; ic < m; ic += kSeedMC) {
        const index_t mc = std::min(kSeedMC, m - ic);
        for (index_t i = 0; i < mc; ++i) {
          const double* src = a.data() + (ic + i) * a.ld() + pc;
          double* dst = ablock.data() + i * kc;
          for (index_t p = 0; p < kc; ++p) dst[p] = alpha * src[p];
        }
        seed_kernel_nn(mc, nc, kc, ablock.data(), kc, b.data() + pc * b.ld() + jc,
                       b.ld(), c.data() + ic * c.ld() + jc, c.ld());
      }
    }
  }
}

// ---- timing harness -------------------------------------------------------

struct Result {
  std::string kernel;
  index_t n;
  double gflops;
  double seconds;  // best single-run wall time
  int reps;
  // Microkernel ISA active while this row was measured (rows under a
  // ScopedIsa force record the forced ISA, not the dispatched one).
  std::string isa = xblas::isa_name(xblas::active_isa());
};

// Thread count the whole run was measured with; recorded per JSON row so
// the cross-PR perf trajectory never mixes thread scaling with kernel
// quality (the embedded seed kernel is always serial).
int g_threads = 1;

// Run fn repeatedly (after one warmup) until min_time total or min 3 reps;
// report the best run. fn performs one run and returns the seconds of the
// timed section only, so kernels that must restore their input each rep
// (trsm/getrf/potrf) keep the O(n^2) copy out of the measurement.
template <typename Fn>
Result time_kernel(const std::string& name, index_t n, double flops, Fn&& fn,
                   double min_time) {
  fn();  // warmup
  double best = 1e300;
  double total = 0.0;
  int reps = 0;
  while (total < min_time || reps < 3) {
    const double s = fn();
    best = std::min(best, s);
    total += s;
    ++reps;
  }
  return Result{name, n, flops / best * 1e-9, best, reps};
}

// Wrap an untimed setup step and a timed kernel run.
template <typename Setup, typename Kernel>
auto timed_run(Setup&& setup, Kernel&& kernel) {
  return [setup, kernel]() {
    setup();
    conflux::Stopwatch sw;
    kernel();
    return sw.seconds();
  };
}

template <typename Kernel>
auto timed_run(Kernel&& kernel) {
  return timed_run([] {}, std::forward<Kernel>(kernel));
}

void print_result(const Result& r) {
  std::printf("%-18s n=%-5lld %8.2f GF/s  (best %.4fs over %d reps, %s)\n",
              r.kernel.c_str(), static_cast<long long>(r.n), r.gflops,
              r.seconds, r.reps, r.isa.c_str());
}

bool write_json(const std::string& path, const std::vector<Result>& results) {
  std::ofstream out(path);
  conflux::json::Writer w(out);
  w.begin_array();
  for (const Result& r : results) {
    w.begin_object();
    w.field("kernel", std::string_view(r.kernel));
    w.field("n", static_cast<long long>(r.n));
    w.field("gflops", r.gflops);
    w.field("best_seconds", r.seconds);
    w.field("reps", r.reps);
    w.field("threads", g_threads);
    w.field("isa", std::string_view(r.isa));
    w.field("tuning_source", xblas::tuning_source());
    w.field("git_describe", conflux::git_describe());
    w.end_object();
  }
  w.end_array();
  out << "\n";
  return out.good();
}

double find_gflops(const std::vector<Result>& results, const std::string& kernel,
                   index_t n) {
  for (const Result& r : results) {
    if (r.kernel == kernel && r.n == n) return r.gflops;
  }
  return 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const conflux::Cli cli(argc, argv);
  const std::string out_path = cli.get_string("out", "BENCH_blas.json");
  // Default to 1 thread so kernel-quality numbers are comparable across
  // machines, but let XBLAS_THREADS (already folded into tuning()) win when
  // the flag is not given explicitly. 0 means "library default", which is
  // resolved to the real OpenMP thread count below so the JSON rows and the
  // speedup-vs-seed line (the seed kernel is always serial) stay honest.
  const int env_threads =
      std::getenv("XBLAS_THREADS") ? xblas::tuning().threads : 1;
  int threads = static_cast<int>(cli.get_int("threads", env_threads));
  if (threads == 0) {
#ifdef _OPENMP
    threads = omp_get_max_threads();
#else
    threads = 1;
#endif
  }
  const double min_time = cli.get_double("min-time", 0.3);
  const bool large = cli.get_flag("large");
  const bool sweep = cli.get_flag("sweep");
  const bool autotune = cli.get_flag("autotune");
  const double budget = cli.get_double("budget", 60.0);
  const std::string require_source = cli.get_string("require-tuning-source", "");
  cli.check_unused();

  std::printf("isa: %s (dispatched)  tuning_source: %s  build: %s\n",
              xblas::isa_name(xblas::active_isa()), xblas::tuning_source(),
              conflux::git_describe());

  // CI round-trip check: a fresh process must have resolved its tuning from
  // the layer the caller expects (e.g. "file" right after --autotune wrote
  // one). Checked before anything below mutates tuning().
  if (!require_source.empty() && require_source != xblas::tuning_source()) {
    std::fprintf(stderr,
                 "error: tuning source is '%s', required '%s' (tuning file: %s)\n",
                 xblas::tuning_source(), require_source.c_str(),
                 xblas::autotune::default_tuning_path().c_str());
    return 1;
  }

  xblas::tuning().threads = threads;
  g_threads = threads;

  if (autotune) {
    xblas::autotune::Options opts;
    opts.budget_seconds = budget;
    std::printf("autotuning isa=%s (budget %.1fs)...\n",
                xblas::isa_name(xblas::active_isa()), budget);
    const xblas::autotune::Report rep = xblas::autotune::run(opts);
    for (const xblas::autotune::Entry& e : rep.tuned) {
      std::printf("  best %-4s mc=%-4lld kc=%-4lld nc=%-5lld db=%-4lld "
                  "lu_nb=%-4lld %8.2f GF/s\n",
                  e.type.c_str(), static_cast<long long>(e.mc),
                  static_cast<long long>(e.kc), static_cast<long long>(e.nc),
                  static_cast<long long>(e.db), static_cast<long long>(e.lu_nb),
                  e.gflops);
    }
    std::printf("autotune timed %d candidates, skipped %d, in %.1fs\n",
                rep.candidates_timed, rep.candidates_skipped, rep.seconds);
    const std::string path = xblas::autotune::default_tuning_path();
    if (path.empty()) {
      std::printf("tuning persistence disabled (XBLAS_TUNING_FILE empty and "
                  "no cache dir)\n");
      return rep.tuned.empty() ? 1 : 0;
    }
    if (!xblas::autotune::save_report(path, rep)) {
      std::fprintf(stderr, "error: could not write %s\n", path.c_str());
      return 1;
    }
    std::printf("wrote %s (%zu entries tuned)\n", path.c_str(),
                rep.tuned.size());
    return 0;
  }
  std::vector<index_t> shapes = {256, 512, 1024};
  if (large) shapes.push_back(2048);
  const index_t nmax = shapes.back();

  std::vector<Result> results;
  for (const index_t n : shapes) {
    const MatrixD a = conflux::random_matrix(n, n, 1);
    const MatrixD b = conflux::random_matrix(n, n, 2);
    MatrixD c(n, n, 0.0);
    const double gemm_fl = xblas::gemm_flops(n, n, n);

    results.push_back(time_kernel("gemm_seed", n, gemm_fl, timed_run([&] {
      seed_gemm(1.0, a.view(), b.view(), 0.0, c.view());
    }), min_time));
    print_result(results.back());

    results.push_back(time_kernel("gemm", n, gemm_fl, timed_run([&] {
      xblas::gemm(xblas::Trans::None, xblas::Trans::None, 1.0, a.view(),
                  b.view(), 0.0, c.view());
    }), min_time));
    print_result(results.back());

    // syrk touches only the triangle: half the gemm flops.
    results.push_back(time_kernel("syrk", n, gemm_fl / 2.0, timed_run([&] {
      xblas::syrk(xblas::UpLo::Lower, xblas::Trans::None, 1.0, a.view(), 0.0,
                  c.view());
    }), min_time));
    print_result(results.back());

    results.push_back(time_kernel("gemmt", n, gemm_fl / 2.0, timed_run([&] {
      xblas::gemmt(xblas::UpLo::Lower, xblas::Trans::None, xblas::Trans::None,
                   1.0, a.view(), b.view(), 0.0, c.view());
    }), min_time));
    print_result(results.back());

    MatrixD t = conflux::random_matrix(n, n, 3);
    for (index_t i = 0; i < n; ++i) t(i, i) += 4.0;
    MatrixD x(n, n, 0.0);
    results.push_back(time_kernel(
        "trsm", n, xblas::trsm_flops(n, n, xblas::Side::Left),
        timed_run([&] { conflux::copy<double>(b.view(), x.view()); },
                  [&] {
                    xblas::trsm(xblas::Side::Left, xblas::UpLo::Lower,
                                xblas::Trans::None, xblas::Diag::NonUnit, 1.0,
                                t.view(), x.view());
                  }),
        min_time));
    print_result(results.back());

    // fp32 rows: same shapes, converted inputs. The fp32/fp64 gemm ratio at
    // the largest shape is the throughput half of the mixed-precision story
    // (the other half, refinement convergence, lives in BENCH_factor.json).
    conflux::MatrixF af(n, n), bf(n, n), cf(n, n, 0.0f);
    conflux::convert<double, float>(a.view(), af.view());
    conflux::convert<double, float>(b.view(), bf.view());
    results.push_back(time_kernel("gemm_f32", n, gemm_fl, timed_run([&] {
      xblas::gemm(xblas::Trans::None, xblas::Trans::None, 1.0f, af.view(),
                  bf.view(), 0.0f, cf.view());
    }), min_time));
    print_result(results.back());

    conflux::MatrixF tf(n, n), xf(n, n, 0.0f);
    conflux::convert<double, float>(t.view(), tf.view());
    results.push_back(time_kernel(
        "trsm_f32", n, xblas::trsm_flops(n, n, xblas::Side::Left),
        timed_run([&] { conflux::convert<double, float>(b.view(), xf.view()); },
                  [&] {
                    xblas::trsm(xblas::Side::Left, xblas::UpLo::Lower,
                                xblas::Trans::None, xblas::Diag::NonUnit, 1.0f,
                                tf.view(), xf.view());
                  }),
        min_time));
    print_result(results.back());

    MatrixD lu(n, n);
    std::vector<index_t> ipiv;
    results.push_back(time_kernel(
        "getrf", n, 2.0 * n * n * n / 3.0,
        timed_run([&] { conflux::copy<double>(a.view(), lu.view()); },
                  [&] { xblas::getrf(lu.view(), ipiv); }),
        min_time));
    print_result(results.back());

    const MatrixD spd = conflux::random_spd_matrix(n, 6);
    MatrixD ch(n, n);
    results.push_back(time_kernel(
        "potrf", n, 1.0 * n * n * n / 3.0,
        timed_run([&] { conflux::copy<double>(spd.view(), ch.view()); },
                  [&] { xblas::potrf(ch.view()); }),
        min_time));
    print_result(results.back());
  }

  // ---- per-ISA gemm rows + the dispatch regression gate ----
  // Every kernel the host can run gets its own fp64/fp32 row at n = 1024
  // (forced via ScopedIsa, recorded in the row's `isa` field), then runtime
  // dispatch itself is gated: the dispatched fp64 kernel must be at least
  // as fast as the portable baseline. Both legs interleave their reps in
  // one loop so they see the same machine state; like the factor_schedule
  // lookahead gate, a 5% margin covers OS-scheduler noise on shared
  // runners — a real regression (a mis-dispatched kernel) is far larger.
  bool gates_ok = true;
  {
    const index_t ni = 1024;
    const MatrixD a = conflux::random_matrix(ni, ni, 1);
    const MatrixD b = conflux::random_matrix(ni, ni, 2);
    MatrixD c(ni, ni, 0.0);
    conflux::MatrixF af(ni, ni), bf(ni, ni), cf(ni, ni, 0.0f);
    conflux::convert<double, float>(a.view(), af.view());
    conflux::convert<double, float>(b.view(), bf.view());
    const double fl = xblas::gemm_flops(ni, ni, ni);

    std::printf("\nPer-ISA gemm (n=%lld):\n", static_cast<long long>(ni));
    for (int i = 0; i < xblas::kIsaCount; ++i) {
      const xblas::Isa isa = static_cast<xblas::Isa>(i);
      if (!xblas::isa_available(isa)) continue;
      xblas::ScopedIsa force(isa);
      results.push_back(time_kernel(
          std::string("gemm_isa_") + xblas::isa_name(isa), ni, fl, timed_run([&] {
            xblas::gemm(xblas::Trans::None, xblas::Trans::None, 1.0, a.view(),
                        b.view(), 0.0, c.view());
          }),
          min_time));
      print_result(results.back());
      results.push_back(time_kernel(
          std::string("gemm_f32_isa_") + xblas::isa_name(isa), ni, fl,
          timed_run([&] {
            xblas::gemm(xblas::Trans::None, xblas::Trans::None, 1.0f, af.view(),
                        bf.view(), 0.0f, cf.view());
          }),
          min_time));
      print_result(results.back());
    }

    const xblas::Isa dispatched = xblas::active_isa();
    const auto one_rep = [&](xblas::Isa isa) {
      xblas::ScopedIsa force(isa);
      conflux::Stopwatch sw;
      xblas::gemm(xblas::Trans::None, xblas::Trans::None, 1.0, a.view(),
                  b.view(), 0.0, c.view());
      return sw.seconds();
    };
    one_rep(xblas::Isa::Portable);  // warm both code paths
    one_rep(dispatched);
    double best_port = 1e300, best_disp = 1e300, total = 0.0;
    int reps = 0;
    const double gate_time = 2.0 * std::max(min_time, 0.3);
    while (total < gate_time || reps < 6) {
      const double sp = one_rep(xblas::Isa::Portable);
      const double sd = one_rep(dispatched);
      best_port = std::min(best_port, sp);
      best_disp = std::min(best_disp, sd);
      total += sp + sd;
      reps += 2;
    }
    const double gf_port = fl / best_port * 1e-9;
    const double gf_disp = fl / best_disp * 1e-9;
    Result rp{"gemm_gate_portable", ni, gf_port, best_port, reps / 2};
    rp.isa = xblas::isa_name(xblas::Isa::Portable);
    results.push_back(rp);
    Result rd{"gemm_gate_dispatched", ni, gf_disp, best_disp, reps / 2};
    rd.isa = xblas::isa_name(dispatched);
    results.push_back(rd);
    const bool pass =
        std::isfinite(gf_disp) && gf_disp > 0.0 && 1.05 * gf_disp >= gf_port;
    std::printf("gate %-22s %-22s measured %11.4g vs gated %11.4g "
                "(ratio %.3fx) %s\n",
                "dispatch-speed",
                (std::string("gemm n=1024 ") + xblas::isa_name(dispatched))
                    .c_str(),
                gf_disp, gf_port, gf_disp / gf_port, pass ? "PASS" : "FAIL");
    if (!pass) gates_ok = false;
  }

  if (sweep) {
    std::printf("\nCache-block sweep (gemm, n=%lld):\n",
                static_cast<long long>(nmax));
    // The sweep machinery lives in src/blas/autotune.cpp (shared with
    // --autotune); the callback lands every timed point in the JSON rows.
    const xblas::autotune::SweepBest best = xblas::autotune::sweep_gemm<double>(
        nmax, {64, 96, 128, 192, 256}, {128, 256, 384, 512}, {2048, 4096},
        std::min(min_time, 0.15),
        [&](index_t mc, index_t kc, index_t nc, double gf) {
          std::printf("  mc=%-4lld kc=%-4lld nc=%-5lld %8.2f GF/s\n",
                      static_cast<long long>(mc), static_cast<long long>(kc),
                      static_cast<long long>(nc), gf);
          Result r{"gemm_sweep_mc" + std::to_string(mc) + "_kc" +
                       std::to_string(kc) + "_nc" + std::to_string(nc),
                   nmax, gf, 0.0, 0};
          r.seconds = xblas::gemm_flops(nmax, nmax, nmax) / gf * 1e-9;
          results.push_back(r);
        });
    std::printf("  best: mc=%lld kc=%lld nc=%lld at %.2f GF/s\n",
                static_cast<long long>(best.mc), static_cast<long long>(best.kc),
                static_cast<long long>(best.nc), best.gflops);
  }

  const double seed_gf = find_gflops(results, "gemm_seed", nmax);
  const double gemm_gf = find_gflops(results, "gemm", nmax);
  const double syrk_gf = find_gflops(results, "syrk", nmax);
  const double trsm_gf = find_gflops(results, "trsm", nmax);
  const double gemm_f32_gf = find_gflops(results, "gemm_f32", nmax);
  if (seed_gf > 0.0 && gemm_gf > 0.0) {
    std::printf("\ngemm speedup vs seed kernel @ n=%lld: %.2fx\n",
                static_cast<long long>(nmax), gemm_gf / seed_gf);
    std::printf("syrk/gemm throughput ratio: %.2f   trsm/gemm: %.2f\n",
                syrk_gf / gemm_gf, trsm_gf / gemm_gf);
    std::printf("fp32/fp64 gemm throughput ratio: %.2fx\n", gemm_f32_gf / gemm_gf);
  }

  if (!write_json(out_path, results)) {
    std::fprintf(stderr, "error: could not write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s (%zu rows)\n", out_path.c_str(), results.size());
  return gates_ok ? 0 : 1;
}
