// Local-kernel throughput microbenchmarks (google-benchmark): the gemm /
// trsm / getrf / potrf substrate whose flop counts feed the gamma term of
// the time model. Not a paper figure; used to sanity-check that local
// compute is not the bottleneck of the Real-mode test suite.
#include <benchmark/benchmark.h>

#include "blas/blas.hpp"
#include "blas/lapack.hpp"
#include "tensor/random_matrix.hpp"

namespace xblas = conflux::xblas;
using conflux::index_t;
using conflux::MatrixD;

namespace {

void BM_Gemm(benchmark::State& state) {
  const auto n = static_cast<index_t>(state.range(0));
  const MatrixD a = conflux::random_matrix(n, n, 1);
  const MatrixD b = conflux::random_matrix(n, n, 2);
  MatrixD c(n, n, 0.0);
  for (auto _ : state) {
    xblas::gemm(xblas::Trans::None, xblas::Trans::None, 1.0, a.view(), b.view(),
                0.0, c.view());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long long>(2 * n * n * n));
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void BM_Trsm(benchmark::State& state) {
  const auto n = static_cast<index_t>(state.range(0));
  MatrixD t = conflux::random_matrix(n, n, 3);
  for (index_t i = 0; i < n; ++i) t(i, i) += 4.0;
  const MatrixD b0 = conflux::random_matrix(n, n, 4);
  MatrixD b = b0;
  for (auto _ : state) {
    state.PauseTiming();
    b = b0;
    state.ResumeTiming();
    xblas::trsm(xblas::Side::Left, xblas::UpLo::Lower, xblas::Trans::None,
                xblas::Diag::NonUnit, 1.0, t.view(), b.view());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long long>(n * n * n));
}
BENCHMARK(BM_Trsm)->Arg(64)->Arg(128)->Arg(256);

void BM_Getrf(benchmark::State& state) {
  const auto n = static_cast<index_t>(state.range(0));
  const MatrixD a0 = conflux::random_matrix(n, n, 5);
  MatrixD a = a0;
  std::vector<index_t> ipiv;
  for (auto _ : state) {
    state.PauseTiming();
    a = a0;
    state.ResumeTiming();
    benchmark::DoNotOptimize(xblas::getrf(a.view(), ipiv));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long long>(2 * n * n * n / 3));
}
BENCHMARK(BM_Getrf)->Arg(64)->Arg(128)->Arg(256);

void BM_Potrf(benchmark::State& state) {
  const auto n = static_cast<index_t>(state.range(0));
  const MatrixD a0 = conflux::random_spd_matrix(n, 6);
  MatrixD a = a0;
  for (auto _ : state) {
    state.PauseTiming();
    a = a0;
    state.ResumeTiming();
    benchmark::DoNotOptimize(xblas::potrf(a.view()));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long long>(n * n * n / 3));
}
BENCHMARK(BM_Potrf)->Arg(64)->Arg(128)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
