// Figure 8b: weak-scaling communication volume per node (constant work per
// node: N = 3200 * P^{1/3}). The 2.5D algorithms (COnfLUX, CANDMC) keep the
// per-node volume essentially constant; the 2D libraries grow.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "support/cli.hpp"

namespace bench = conflux::bench;
using conflux::index_t;

int main(int argc, char** argv) {
  const conflux::Cli cli(argc, argv);
  const int max_p = static_cast<int>(cli.get_int("max_p", 1024));
  cli.check_unused();

  conflux::TextTable table(
      "Figure 8b: weak scaling, N = 3200 * P^{1/3}, volume per node [MB]");
  table.set_header({"nodes", "P", "N", "COnfLUX", "MKL", "SLATE", "CANDMC"});
  const double to_mb = 2.0 * 8.0 / 1e6;
  for (int p = 8; p <= max_p; p *= 2) {
    const auto n = static_cast<index_t>(
        std::llround(3200.0 * std::cbrt(static_cast<double>(p))));
    table.add_row(
        {static_cast<long long>(p / 2), static_cast<long long>(p),
         static_cast<long long>(n),
         bench::run_lu(bench::Impl::Conflux, n, p).avg_volume_words * to_mb,
         bench::run_lu(bench::Impl::Mkl, n, p).avg_volume_words * to_mb,
         bench::run_lu(bench::Impl::Slate, n, p).avg_volume_words * to_mb,
         bench::run_lu(bench::Impl::Candmc, n, p).avg_volume_words * to_mb});
  }
  table.print(std::cout);
  std::cout << "\nPaper shape check: 2.5D rows stay near-constant; 2D rows grow\n"
               "with P (sub-optimal weak scaling).\n";
  return 0;
}
